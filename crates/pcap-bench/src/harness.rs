//! Shared measurement machinery for the figure/table binaries.

use pcap_apps::{AppParams, Benchmark};
use pcap_core::{
    solve_decomposed, solve_sweep_exact, FixedLpOptions, SweepMode, SweepOptions, TaskFrontiers,
};
use pcap_dag::{TaskGraph, VertexKind};
use pcap_lp::{LinearAlgebra, SolveStats};
use pcap_machine::MachineSpec;
use pcap_sched::{Conductor, ConductorOptions, ConfigOnly, StaticPolicy};
use pcap_sim::{Policy, SimOptions, Simulator};

/// A single experiment's fixed parameters.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// MPI ranks (= sockets). The paper uses 32.
    pub ranks: u32,
    /// Warm-up iterations discarded from every measurement (paper: 3).
    pub warmup_iterations: u32,
    /// Measured iterations after warm-up.
    pub measured_iterations: u32,
    /// Workload seed.
    pub seed: u64,
    /// Simulator options for the runtime policies (overheads + noise).
    pub sim: SimOptions,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            ranks: 32,
            warmup_iterations: 3,
            measured_iterations: 12,
            seed: 0x5C15,
            sim: SimOptions::default(),
        }
    }
}

impl ExperimentConfig {
    /// Total iterations to generate.
    pub fn total_iterations(&self) -> u32 {
        self.warmup_iterations + self.measured_iterations
    }

    /// Generates the benchmark trace for this experiment.
    pub fn generate(&self, bench: Benchmark) -> TaskGraph {
        bench.generate(&AppParams {
            ranks: self.ranks,
            iterations: self.total_iterations(),
            seed: self.seed,
        })
    }
}

/// Measured times (seconds over the post-warm-up region) for each method at
/// one power cap. `None` = not schedulable at that cap (paper Figures 9/10:
/// "Some benchmarks were not able to be scheduled at the lowest ...
/// constraint").
#[derive(Debug, Clone, Copy, Default)]
pub struct MethodTimes {
    pub lp: Option<f64>,
    pub static_: Option<f64>,
    pub conductor: Option<f64>,
    pub config_only: Option<f64>,
}

/// One row of a power sweep.
#[derive(Debug, Clone, Copy)]
pub struct CapRow {
    /// Average watts per processor socket.
    pub per_socket_w: f64,
    pub times: MethodTimes,
    /// Simplex telemetry aggregated over every LP window solved at this cap
    /// (zeroed when the cap is infeasible or the row came from a pre-v2
    /// cache; check `lp_stats.solves > 0` before reporting).
    pub lp_stats: SolveStats,
}

/// Performance improvement of the bound over a method, in percent:
/// `(t_method / t_lp − 1) · 100` — "the LP yields up to 41.1% improvement
/// in power-constrained performance".
pub fn improvement_pct(t_method: f64, t_lp: f64) -> f64 {
    (t_method / t_lp - 1.0) * 100.0
}

/// True when the figure binary was asked to certify every LP solve:
/// `--certify` on the command line or `PCAP_CERTIFY=1` in the environment.
/// Certification re-verifies each solution against an independently
/// computed duality certificate and cold re-solves every warm-started sweep
/// point (see `pcap_lp::certificate`); it is always on in debug/test
/// builds, this flag extends it to release-mode experiment runs.
pub fn certify_requested() -> bool {
    std::env::args().any(|a| a == "--certify")
        || std::env::var("PCAP_CERTIFY").is_ok_and(|v| v == "1")
}

/// Linear-algebra engine for the harness's LP solves: `--lp-engine=dense`
/// on the command line or `PCAP_LP_ENGINE=dense` in the environment selects
/// the dense oracle engine (the CI sparse-vs-dense differential runs the
/// figure pipeline both ways); anything else gets the sparse default.
pub fn lp_engine_requested() -> LinearAlgebra {
    let dense = std::env::args().any(|a| a == "--lp-engine=dense")
        || std::env::var("PCAP_LP_ENGINE").is_ok_and(|v| v.eq_ignore_ascii_case("dense"));
    if dense {
        LinearAlgebra::Dense
    } else {
        LinearAlgebra::Sparse
    }
}

/// Sweep engine for the harness's LP solves: `--sweep-mode=percap` on the
/// command line or `PCAP_SWEEP_MODE=percap` in the environment selects one
/// warm-started solve per cap (the differential oracle for the ramp; the CI
/// ramp-vs-percap differential runs the figure pipeline both ways);
/// anything else gets the parametric-ramp default.
pub fn sweep_mode_requested() -> SweepMode {
    let percap = std::env::args().any(|a| a == "--sweep-mode=percap")
        || std::env::var("PCAP_SWEEP_MODE").is_ok_and(|v| v.eq_ignore_ascii_case("percap"));
    if percap {
        SweepMode::PerCap
    } else {
        SweepMode::Ramp
    }
}

/// Time elapsed between the end of warm-up (the `warmup`-th `MPI_Pcontrol`)
/// and `MPI_Finalize`, given realized vertex times.
pub fn measured_region(graph: &TaskGraph, vertex_times: &[f64], warmup: u32) -> f64 {
    let mut boundary = 0.0;
    if warmup > 0 {
        let mut seen = 0;
        for &v in graph.topo_order() {
            if graph.vertex(v).kind == VertexKind::Pcontrol {
                seen += 1;
                if seen == warmup {
                    boundary = vertex_times[v.index()];
                    break;
                }
            }
        }
    }
    vertex_times[graph.finalize_vertex().index()] - boundary
}

/// Computes the LP bound and simulates the runtime policies for one
/// benchmark at one job-level cap. Set `with_config_only` to also run the
/// selection-only ablation.
pub fn evaluate_at_cap(
    graph: &TaskGraph,
    machine: &MachineSpec,
    frontiers: &TaskFrontiers,
    cfg: &ExperimentConfig,
    per_socket_w: f64,
    with_config_only: bool,
) -> MethodTimes {
    let job_cap = per_socket_w * cfg.ranks as f64;

    let mut lp_opts = FixedLpOptions::default();
    lp_opts.lp.linear_algebra = lp_engine_requested();
    let lp = solve_decomposed(graph, machine, frontiers, job_cap, &lp_opts)
        .ok()
        .map(|s| measured_region(graph, &s.vertex_times, cfg.warmup_iterations));

    let mut times = simulate_at_cap(graph, machine, frontiers, cfg, per_socket_w, with_config_only);
    times.lp = lp;
    times
}

/// Simulates the runtime policies (everything except the LP bound) for one
/// benchmark at one cap.
fn simulate_at_cap(
    graph: &TaskGraph,
    machine: &MachineSpec,
    frontiers: &TaskFrontiers,
    cfg: &ExperimentConfig,
    per_socket_w: f64,
    with_config_only: bool,
) -> MethodTimes {
    let job_cap = per_socket_w * cfg.ranks as f64;
    let warm = cfg.warmup_iterations;

    let run = |policy: &mut dyn Policy| -> Option<f64> {
        Simulator::new(graph, machine, cfg.sim.clone())
            .run(policy)
            .ok()
            .map(|r| measured_region(graph, &r.vertex_times, warm))
    };

    let static_ = run(&mut StaticPolicy::uniform(job_cap, cfg.ranks, machine.max_threads));
    let conductor = run(&mut Conductor::new(
        job_cap,
        cfg.ranks,
        machine.max_threads,
        frontiers.clone(),
        ConductorOptions::default(),
    ));
    let config_only = if with_config_only {
        run(&mut ConfigOnly::new(job_cap, cfg.ranks, frontiers.clone(), machine.max_threads))
    } else {
        None
    };

    MethodTimes { lp: None, static_, conductor, config_only }
}

/// Sweeps a benchmark over per-socket caps.
///
/// The LP bound for the whole grid is computed by one
/// [`pcap_core::solve_sweep`] call — the event LPs are built once per window
/// and re-solved per cap with warm-started bases, parallel across cap chunks
/// — while the simulator policies (whose runs are independent per cap and
/// dominated by event processing, not LP solving) spread over a worker pool
/// as before. Each returned row carries the solver telemetry for its cap.
pub fn evaluate_benchmark(
    bench: Benchmark,
    machine: &MachineSpec,
    cfg: &ExperimentConfig,
    per_socket_caps: &[f64],
    with_config_only: bool,
) -> Vec<CapRow> {
    evaluate_benchmark_exact(bench, machine, cfg, per_socket_caps, with_config_only).0
}

/// [`evaluate_benchmark`], additionally returning the exact frontier
/// breakpoints (job-level W, ascending) the parametric ramp crossed while
/// sweeping the grid — empty under `--sweep-mode=percap`.
pub fn evaluate_benchmark_exact(
    bench: Benchmark,
    machine: &MachineSpec,
    cfg: &ExperimentConfig,
    per_socket_caps: &[f64],
    with_config_only: bool,
) -> (Vec<CapRow>, Vec<f64>) {
    let graph = cfg.generate(bench);
    let frontiers = TaskFrontiers::build(&graph, machine);

    let job_caps: Vec<f64> = per_socket_caps.iter().map(|&w| w * cfg.ranks as f64).collect();
    let mut sweep_opts = SweepOptions::default();
    sweep_opts.fixed.lp.linear_algebra = lp_engine_requested();
    sweep_opts.mode = sweep_mode_requested();
    if certify_requested() {
        sweep_opts.certify = true;
        sweep_opts.fixed.lp.certify = true;
    }
    let sweep = solve_sweep_exact(&graph, machine, &frontiers, &job_caps, &sweep_opts);
    let lp_points = sweep.points;

    let n = per_socket_caps.len();
    let mut rows: Vec<Option<CapRow>> = vec![None; n];
    let workers = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4).min(n.max(1));

    crossbeam::thread::scope(|scope| {
        let (tx, rx) = crossbeam::channel::unbounded::<usize>();
        for i in 0..n {
            tx.send(i).unwrap();
        }
        drop(tx);
        let (out_tx, out_rx) = crossbeam::channel::unbounded::<(usize, MethodTimes)>();
        for _ in 0..workers {
            let rx = rx.clone();
            let out = out_tx.clone();
            let graph = &graph;
            let frontiers = &frontiers;
            scope.spawn(move |_| {
                while let Ok(i) = rx.recv() {
                    let cap = per_socket_caps[i];
                    let times =
                        simulate_at_cap(graph, machine, frontiers, cfg, cap, with_config_only);
                    out.send((i, times)).unwrap();
                }
            });
        }
        drop(out_tx);
        while let Ok((i, times)) = out_rx.recv() {
            rows[i] = Some(CapRow {
                per_socket_w: per_socket_caps[i],
                times,
                lp_stats: SolveStats::default(),
            });
        }
    })
    .expect("sweep workers do not panic");

    let rows = rows
        .into_iter()
        .zip(&lp_points)
        .map(|(r, pt)| {
            let mut row = r.expect("all caps evaluated");
            match &pt.schedule {
                Ok(sched) => {
                    row.times.lp =
                        Some(measured_region(&graph, &sched.vertex_times, cfg.warmup_iterations));
                    row.lp_stats = sched.stats;
                }
                // Genuine infeasibility at a low cap renders as "-", matching
                // the paper; anything else (solver failure, certification or
                // warm-vs-cold mismatch) is a bug in the bound pipeline and
                // fails the experiment outright. The canonical-optimum phase
                // leaves no legitimate reason for a certified sweep to drop
                // a point, so there is no allowed-failure list here.
                Err(pcap_core::CoreError::Infeasible) => {}
                Err(e) => panic!(
                    "[sweep] {bench:?} at {} W/socket: LP bound failed: {e}",
                    row.per_socket_w
                ),
            }
            row
        })
        .collect();
    (rows, sweep.breakpoints)
}

/// Canonical content fingerprint of everything the LP side of a sweep
/// depends on: the machine model, each benchmark's DAG parameters, and the
/// job-level cap grid, hashed over the [`pcap_core::canon`] encodings of
/// the four per-benchmark instances. Editing a machine parameter (e.g. a
/// pcap-machine frequency table or power coefficient) changes this value
/// and therefore invalidates any cache keyed on it — which a key built
/// only from grid parameters cannot do.
pub fn sweep_fingerprint(
    machine: &MachineSpec,
    cfg: &ExperimentConfig,
    per_socket_caps: &[f64],
) -> u64 {
    let job_caps: Vec<f64> = per_socket_caps.iter().map(|&w| w * cfg.ranks as f64).collect();
    let mut text = String::new();
    for bench in Benchmark::ALL {
        let instance = pcap_core::Instance {
            machine: machine.clone(),
            dag: pcap_core::DagSpec::Bench {
                name: bench.name().to_ascii_lowercase(),
                ranks: cfg.ranks,
                iterations: cfg.total_iterations(),
                seed: cfg.seed,
            },
            caps_w: job_caps.clone(),
        };
        text.push_str(&instance.encode());
        text.push('\n');
    }
    pcap_core::canon::fnv1a(text.as_bytes())
}

/// One benchmark's sweep: the cap rows plus the exact frontier breakpoints
/// (job-level W, ascending) the parametric ramp crossed. The breakpoints
/// are the caps where the makespan-vs-cap curve kinks — between them the
/// frontier is affine. Empty under `--sweep-mode=percap`.
///
/// At production scale the union over every window's frontier runs to tens
/// of thousands of kinks per benchmark, so the cache (and this struct, when
/// it came from the cache or [`cached_sweep_exact`]) carries a bounded,
/// evenly-index-sampled subset of at most [`MAX_CACHED_BREAKPOINTS`]
/// (endpoints always included) alongside the true total; the full list is
/// available in-memory from [`pcap_core::solve_sweep_exact`].
#[derive(Debug, Clone)]
pub struct BenchSweep {
    pub bench: Benchmark,
    pub rows: Vec<CapRow>,
    /// Sampled breakpoint caps, ascending, `len() <= MAX_CACHED_BREAKPOINTS`.
    pub breakpoints: Vec<f64>,
    /// How many breakpoints the ramp actually crossed across the grid.
    pub breakpoints_total: usize,
}

/// Cap on breakpoints persisted per benchmark in the sweep cache (and
/// printed by the figure binaries): full lists reach ~57k entries on the
/// fig09 BT workload, which would dwarf the rest of the committed cache.
pub const MAX_CACHED_BREAKPOINTS: usize = 64;

/// Deterministic even-index downsample to [`MAX_CACHED_BREAKPOINTS`],
/// keeping the first and last kink. Strictly increasing input stays
/// strictly increasing (indices are strictly monotone).
fn sample_breakpoints(full: &[f64]) -> Vec<f64> {
    let k = MAX_CACHED_BREAKPOINTS;
    if full.len() <= k {
        return full.to_vec();
    }
    (0..k).map(|i| full[i * (full.len() - 1) / (k - 1)]).collect()
}

/// The standard four-benchmark sweep feeding Figures 9–15, cached on disk so
/// the figure binaries share one expensive computation. The cache key (first
/// line) encodes the experiment parameters; a mismatch recomputes.
pub fn cached_sweep(
    path: &std::path::Path,
    machine: &MachineSpec,
    cfg: &ExperimentConfig,
    per_socket_caps: &[f64],
) -> Vec<(Benchmark, Vec<CapRow>)> {
    cached_sweep_exact(path, machine, cfg, per_socket_caps)
        .into_iter()
        .map(|b| (b.bench, b.rows))
        .collect()
}

/// [`cached_sweep`], full fidelity: rows plus per-benchmark frontier
/// breakpoints.
pub fn cached_sweep_exact(
    path: &std::path::Path,
    machine: &MachineSpec,
    cfg: &ExperimentConfig,
    per_socket_caps: &[f64],
) -> Vec<BenchSweep> {
    // `v5` extends the v4 format with the sweep engine: the mode is in the
    // key (a per-cap differential run must not reuse a ramp cache or vice
    // versa) *and* an explicit per-row column — v4 rows were silently
    // mode-less, so a stale cache could masquerade as either engine's
    // output. Three ramp telemetry columns (ramp_breakpoints, ramp_steps,
    // caps_interpolated) and one `#breakpoints` line per benchmark complete
    // the format; caches written by earlier versions (or against a
    // since-edited machine model) mismatch the key and recompute. Warm-up/
    // measured stay in the key separately because the split (not just the
    // total) shifts the measured-region boundary.
    let engine = match lp_engine_requested() {
        LinearAlgebra::Sparse => "sparse",
        LinearAlgebra::Dense => "dense",
    };
    let mode = match sweep_mode_requested() {
        SweepMode::Ramp => "ramp",
        SweepMode::PerCap => "percap",
    };
    let key = format!(
        "#sweep v5 fp={:016x} engine={} mode={} ranks={} warmup={} measured={} seed={} caps={:?}",
        sweep_fingerprint(machine, cfg, per_socket_caps),
        engine,
        mode,
        cfg.ranks,
        cfg.warmup_iterations,
        cfg.measured_iterations,
        cfg.seed,
        per_socket_caps
    );
    if let Ok(text) = std::fs::read_to_string(path) {
        if text.lines().next() == Some(key.as_str()) {
            if let Some(parsed) = parse_sweep(&text, per_socket_caps) {
                return parsed;
            }
            // A matching key with an unparsable body means the cache was
            // truncated or corrupted mid-write: fall through and re-solve.
            eprintln!("[sweep] cache at {} is incomplete or corrupt; recomputing", path.display());
        } else if text.starts_with("#sweep ") {
            eprintln!(
                "[sweep] cache at {} is stale (old format or parameters); recomputing",
                path.display()
            );
        }
    }
    let mut out = Vec::new();
    let mut text = key.clone();
    text.push('\n');
    for bench in Benchmark::ALL {
        eprintln!("[sweep] running {} ...", bench.name());
        let (rows, breakpoints) =
            evaluate_benchmark_exact(bench, machine, cfg, per_socket_caps, true);
        for r in &rows {
            let f = |v: Option<f64>| v.map(|x| format!("{x:.9}")).unwrap_or_else(|| "-".into());
            let s = &r.lp_stats;
            text.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{:.6}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                bench.name(),
                r.per_socket_w,
                f(r.times.lp),
                f(r.times.static_),
                f(r.times.conductor),
                f(r.times.config_only),
                s.iterations,
                s.phase1_iterations,
                s.refactorizations,
                s.wall_time_s,
                u64::from(s.warm_started),
                s.solves,
                s.warm_rejected,
                s.basis_nnz,
                s.factor_nnz,
                mode,
                s.ramp_breakpoints,
                s.ramp_steps,
                s.caps_interpolated,
            ));
        }
        // `{}` is Rust's shortest-round-trip float formatting: the parsed
        // breakpoints are bit-identical to the computed ones. The line
        // carries the true total first, then the bounded sample.
        let breakpoints_total = breakpoints.len();
        let sample = sample_breakpoints(&breakpoints);
        text.push_str(&format!("#breakpoints\t{}\t{breakpoints_total}", bench.name()));
        for b in &sample {
            text.push_str(&format!("\t{b}"));
        }
        text.push('\n');
        out.push(BenchSweep { bench, rows, breakpoints: sample, breakpoints_total });
    }
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let _ = std::fs::write(path, text);
    out
}

/// Parses a v5 cache body, returning `None` unless it is **complete**: a
/// file truncated at a line boundary (e.g. a crashed writer) or a row with
/// mangled telemetry parses cleanly line-by-line, and silently returning
/// the partial grid would feed the figure binaries short data. Every
/// benchmark must therefore appear with exactly the requested cap grid, in
/// order, carry its `#breakpoints` line, and every telemetry field —
/// including the explicit sweep-mode column — must parse strictly.
fn parse_sweep(text: &str, expected_caps: &[f64]) -> Option<Vec<BenchSweep>> {
    let mut map: Vec<BenchSweep> = Vec::new();
    let mut bps: Vec<(Benchmark, usize, Vec<f64>)> = Vec::new();
    for line in text.lines().skip(1) {
        if let Some(rest) = line.strip_prefix("#breakpoints\t") {
            let mut cols = rest.split('\t');
            let name = cols.next()?;
            let bench = Benchmark::ALL.iter().copied().find(|b| b.name() == name)?;
            let total = cols.next()?.parse::<usize>().ok()?;
            let mut list = Vec::new();
            for c in cols {
                list.push(c.parse::<f64>().ok()?);
            }
            // Totals at or under the sampling cap must list every value;
            // larger totals list exactly the cap-sized sample.
            if list.len() != total.min(MAX_CACHED_BREAKPOINTS) {
                return None;
            }
            if bps.iter().any(|(b, _, _)| *b == bench) {
                return None; // duplicate breakpoint line
            }
            bps.push((bench, total, list));
            continue;
        }
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.len() != 19 {
            return None;
        }
        let bench = Benchmark::ALL.iter().copied().find(|b| b.name() == cols[0])?;
        let cap: f64 = cols[1].parse().ok()?;
        let f = |s: &str| -> Option<Option<f64>> {
            if s == "-" {
                Some(None)
            } else {
                s.parse::<f64>().ok().map(Some)
            }
        };
        let warm_started = match cols[10] {
            "1" => true,
            "0" => false,
            _ => return None, // anything else is corruption, not "cold"
        };
        // The mode column must name a real engine; v4 rows (no such
        // column) already failed the width check above.
        if cols[15] != "ramp" && cols[15] != "percap" {
            return None;
        }
        let row = CapRow {
            per_socket_w: cap,
            times: MethodTimes {
                lp: f(cols[2])?,
                static_: f(cols[3])?,
                conductor: f(cols[4])?,
                config_only: f(cols[5])?,
            },
            lp_stats: SolveStats {
                iterations: cols[6].parse().ok()?,
                phase1_iterations: cols[7].parse().ok()?,
                refactorizations: cols[8].parse().ok()?,
                wall_time_s: cols[9].parse().ok()?,
                warm_started,
                solves: cols[11].parse().ok()?,
                warm_rejected: cols[12].parse().ok()?,
                basis_nnz: cols[13].parse().ok()?,
                factor_nnz: cols[14].parse().ok()?,
                ramp_breakpoints: cols[16].parse().ok()?,
                ramp_steps: cols[17].parse().ok()?,
                caps_interpolated: cols[18].parse().ok()?,
                ..Default::default()
            },
        };
        match map.iter_mut().find(|b| b.bench == bench) {
            Some(b) => b.rows.push(row),
            None => map.push(BenchSweep {
                bench,
                rows: vec![row],
                breakpoints: Vec::new(),
                breakpoints_total: 0,
            }),
        }
    }
    // Completeness: all four benchmarks, each with the full requested cap
    // grid in writing order (caps round-trip exactly through `{}`) and its
    // breakpoint line.
    if map.len() != Benchmark::ALL.len() || bps.len() != Benchmark::ALL.len() {
        return None;
    }
    for b in &mut map {
        if b.rows.len() != expected_caps.len()
            || b.rows.iter().zip(expected_caps).any(|(r, &c)| r.per_socket_w != c)
        {
            return None;
        }
        let (_, total, list) = bps.iter().find(|(bench, _, _)| *bench == b.bench)?;
        b.breakpoints_total = *total;
        b.breakpoints = list.clone();
    }
    Some(map)
}

/// Default location of the shared sweep cache: `$PCAP_RESULTS_DIR/sweep.tsv`
/// when the override is set, otherwise `results/sweep.tsv` under the
/// workspace root. Resolving against the workspace root (not the current
/// working directory) keeps the figure binaries sharing one cache no matter
/// where they are launched from.
pub fn default_sweep_path() -> std::path::PathBuf {
    match std::env::var("PCAP_RESULTS_DIR") {
        Ok(dir) if !dir.is_empty() => std::path::PathBuf::from(dir).join("sweep.tsv"),
        _ => workspace_root().join("results").join("sweep.tsv"),
    }
}

/// The workspace root, resolved from this crate's compiled-in manifest dir
/// (`crates/pcap-bench` → two levels up).
fn workspace_root() -> std::path::PathBuf {
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest.ancestors().nth(2).unwrap_or(manifest).to_path_buf()
}

/// Default per-socket cap grid used by Figures 9 and 10 (the paper sweeps
/// 30–80 W per socket).
pub const SWEEP_CAPS: [f64; 6] = [30.0, 40.0, 50.0, 60.0, 70.0, 80.0];

#[cfg(test)]
mod tests {
    use super::*;
    use pcap_core::solve_sweep;

    #[test]
    fn cached_sweep_roundtrips() {
        let dir = std::env::temp_dir().join(format!("pcap-sweep-{}", std::process::id()));
        let path = dir.join("sweep.tsv");
        let m = MachineSpec::e5_2670();
        let cfg = ExperimentConfig {
            ranks: 2,
            warmup_iterations: 1,
            measured_iterations: 1,
            ..Default::default()
        };
        let caps = [50.0, 80.0];
        let first = cached_sweep(&path, &m, &cfg, &caps);
        let second = cached_sweep(&path, &m, &cfg, &caps);
        assert_eq!(first.len(), second.len());
        for ((b1, r1), (b2, r2)) in first.iter().zip(&second) {
            assert_eq!(b1, b2);
            for (a, b) in r1.iter().zip(r2) {
                assert_eq!(a.per_socket_w, b.per_socket_w);
                assert_eq!(a.times.lp.is_some(), b.times.lp.is_some());
                if let (Some(x), Some(y)) = (a.times.lp, b.times.lp) {
                    assert!((x - y).abs() < 1e-6);
                }
                // Telemetry survives the TSV round trip.
                assert_eq!(a.lp_stats.iterations, b.lp_stats.iterations);
                assert_eq!(a.lp_stats.refactorizations, b.lp_stats.refactorizations);
                assert_eq!(a.lp_stats.solves, b.lp_stats.solves);
                assert_eq!(a.lp_stats.warm_started, b.lp_stats.warm_started);
                assert_eq!(a.lp_stats.warm_rejected, b.lp_stats.warm_rejected);
                assert_eq!(a.lp_stats.basis_nnz, b.lp_stats.basis_nnz);
                assert_eq!(a.lp_stats.factor_nnz, b.lp_stats.factor_nnz);
                assert_eq!(a.lp_stats.ramp_breakpoints, b.lp_stats.ramp_breakpoints);
                assert_eq!(a.lp_stats.ramp_steps, b.lp_stats.ramp_steps);
                assert_eq!(a.lp_stats.caps_interpolated, b.lp_stats.caps_interpolated);
                assert!(a.lp_stats.basis_nnz > 0, "nnz telemetry missing");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A cache truncated at a line boundary must be rejected, not returned
    /// as a silently shorter grid — and `cached_sweep` must then recompute
    /// and rewrite the full file.
    #[test]
    fn truncated_cache_is_rejected_and_recomputed() {
        let dir = std::env::temp_dir().join(format!("pcap-sweep-trunc-{}", std::process::id()));
        let path = dir.join("sweep.tsv");
        let m = MachineSpec::e5_2670();
        let cfg = ExperimentConfig {
            ranks: 2,
            warmup_iterations: 1,
            measured_iterations: 1,
            ..Default::default()
        };
        let caps = [50.0, 80.0];
        let full = cached_sweep(&path, &m, &cfg, &caps);
        let text = std::fs::read_to_string(&path).unwrap();

        // Drop the last data line: still parses line-by-line, but the grid
        // is short — parse_sweep must reject it.
        let truncated: String =
            text.lines().take(text.lines().count() - 1).map(|l| format!("{l}\n")).collect();
        assert!(parse_sweep(&truncated, &caps).is_none(), "truncated cache must not parse");
        std::fs::write(&path, &truncated).unwrap();
        let recomputed = cached_sweep(&path, &m, &cfg, &caps);
        assert_eq!(recomputed.len(), full.len());
        for (b, rows) in &recomputed {
            assert_eq!(rows.len(), caps.len(), "{} grid incomplete after recompute", b.name());
        }
        // The rewritten cache is whole again.
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), text.lines().count());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Garbage in the `warm_started` column used to parse as `false`; it
    /// must reject the cache instead. Same for a bogus sweep-mode column.
    #[test]
    fn mangled_telemetry_is_rejected() {
        let caps = [50.0, 80.0];
        let f = |warm: &str, mode: &str| {
            let mut text = String::from("#key\n");
            for bench in Benchmark::ALL {
                for cap in caps {
                    text.push_str(&format!(
                        "{}\t{cap}\t1.0\t1.1\t1.2\t-\t10\t4\t1\t0.001000\t{warm}\t2\t0\t30\t36\t{mode}\t1\t2\t0\n",
                        bench.name(),
                    ));
                }
                text.push_str(&format!("#breakpoints\t{}\t1\t205.5\n", bench.name()));
            }
            text
        };
        let parsed = parse_sweep(&f("1", "ramp"), &caps).expect("well-formed cache must parse");
        assert!(parsed.iter().all(|b| b.breakpoints == [205.5] && b.breakpoints_total == 1));
        assert!(parsed.iter().all(|b| b.rows[0].lp_stats.ramp_breakpoints == 1));
        // A breakpoint line whose count disagrees with its values is
        // corruption, not a short list.
        let miscounted = f("1", "ramp").replace("\t1\t205.5", "\t2\t205.5");
        assert!(parse_sweep(&miscounted, &caps).is_none(), "bad breakpoint count must reject");
        assert!(parse_sweep(&f("1", "percap"), &caps).is_some(), "percap mode must parse");
        assert!(parse_sweep(&f("x", "ramp"), &caps).is_none(), "garbage warm_started must reject");
        assert!(parse_sweep(&f("", "ramp"), &caps).is_none(), "empty warm_started must reject");
        assert!(parse_sweep(&f("1", "turbo"), &caps).is_none(), "unknown mode must reject");
        assert!(parse_sweep(&f("1", ""), &caps).is_none(), "empty mode must reject");
        // A cap grid disagreeing with the request is also a stale cache.
        assert!(parse_sweep(&f("0", "ramp"), &[50.0]).is_none(), "extra caps must reject");
        assert!(
            parse_sweep(&f("0", "ramp"), &[50.0, 80.0, 90.0]).is_none(),
            "missing caps must reject"
        );
    }

    /// Migration: a v4-era cache — old key line, 15-column mode-less rows,
    /// no breakpoint lines — must be rejected by the parser and regenerated
    /// (not silently accepted) by `cached_sweep_exact`. This is the same
    /// contract the store's `pcaps1`→`pcaps2` migration pins.
    #[test]
    fn v4_cache_is_rejected_and_regenerated() {
        let caps = [50.0, 80.0];
        // v4 body: no mode column, no ramp counters, no breakpoint lines.
        let mut v4 = String::from(
            "#sweep v4 fp=0123456789abcdef engine=sparse ranks=2 warmup=1 measured=1 \
             seed=23573 caps=[50.0, 80.0]\n",
        );
        for bench in Benchmark::ALL {
            for cap in caps {
                v4.push_str(&format!(
                    "{}\t{cap}\t1.0\t1.1\t1.2\t-\t10\t4\t1\t0.001000\t1\t2\t0\t30\t36\n",
                    bench.name(),
                ));
            }
        }
        assert!(parse_sweep(&v4, &caps).is_none(), "v4 rows must not parse as v5");

        let dir = std::env::temp_dir().join(format!("pcap-sweep-v4mig-{}", std::process::id()));
        let path = dir.join("sweep.tsv");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&path, &v4).unwrap();
        let cfg = ExperimentConfig {
            ranks: 2,
            warmup_iterations: 1,
            measured_iterations: 1,
            ..Default::default()
        };
        let m = MachineSpec::e5_2670();
        let out = cached_sweep_exact(&path, &m, &cfg, &caps);
        assert_eq!(out.len(), Benchmark::ALL.len());
        for b in &out {
            assert_eq!(b.rows.len(), caps.len());
        }
        let rewritten = std::fs::read_to_string(&path).unwrap();
        let first = rewritten.lines().next().unwrap();
        assert!(first.starts_with("#sweep v5 "), "cache must be rewritten as v5: {first}");
        assert!(first.contains(" mode="), "v5 key must carry the sweep mode: {first}");
        assert!(
            rewritten.lines().filter(|l| l.starts_with("#breakpoints\t")).count()
                == Benchmark::ALL.len(),
            "v5 cache must carry one breakpoint line per benchmark"
        );
        // And the rewritten cache round-trips, breakpoints included.
        let again = cached_sweep_exact(&path, &m, &cfg, &caps);
        for (a, b) in out.iter().zip(&again) {
            assert_eq!(a.bench, b.bench);
            assert_eq!(a.breakpoints_total, b.breakpoints_total);
            assert_eq!(a.breakpoints.len(), b.breakpoints.len());
            assert!(a.breakpoints.len() <= MAX_CACHED_BREAKPOINTS);
            for (x, y) in a.breakpoints.iter().zip(&b.breakpoints) {
                assert_eq!(x.to_bits(), y.to_bits(), "breakpoints must round-trip bitwise");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The cache key must react to the machine model, not just the grid
    /// header: editing pcap-machine parameters has to invalidate a stale
    /// `results/sweep.tsv`.
    #[test]
    fn sweep_fingerprint_tracks_machine_model_and_grid() {
        let cfg = ExperimentConfig {
            ranks: 2,
            warmup_iterations: 1,
            measured_iterations: 1,
            ..Default::default()
        };
        let caps = [50.0, 80.0];
        let base = sweep_fingerprint(&MachineSpec::e5_2670(), &cfg, &caps);
        // Deterministic across calls.
        assert_eq!(base, sweep_fingerprint(&MachineSpec::e5_2670(), &cfg, &caps));
        // A different machine model changes the key.
        assert_ne!(base, sweep_fingerprint(&MachineSpec::e5_2650l(), &cfg, &caps));
        // So does a perturbed power coefficient on the *same* model.
        let mut tweaked = MachineSpec::e5_2670();
        tweaked.power.p_idle += 0.5;
        assert_ne!(base, sweep_fingerprint(&tweaked, &cfg, &caps));
        // And the cap grid / workload parameters.
        assert_ne!(base, sweep_fingerprint(&MachineSpec::e5_2670(), &cfg, &[50.0]));
        let reseeded = ExperimentConfig { seed: cfg.seed + 1, ..cfg.clone() };
        assert_ne!(base, sweep_fingerprint(&MachineSpec::e5_2670(), &reseeded, &caps));
    }

    /// End-to-end: a cache written against one machine model is recomputed
    /// (not reused) when the model changes.
    #[test]
    fn cache_written_for_one_machine_is_stale_for_another() {
        let dir = std::env::temp_dir().join(format!("pcap-sweep-machine-{}", std::process::id()));
        let path = dir.join("sweep.tsv");
        let cfg = ExperimentConfig {
            ranks: 2,
            warmup_iterations: 1,
            measured_iterations: 1,
            ..Default::default()
        };
        let caps = [50.0, 80.0];
        let _ = cached_sweep(&path, &MachineSpec::e5_2670(), &cfg, &caps);
        let first_key = std::fs::read_to_string(&path).unwrap().lines().next().unwrap().to_string();
        let _ = cached_sweep(&path, &MachineSpec::e5_2650l(), &cfg, &caps);
        let second_key =
            std::fs::read_to_string(&path).unwrap().lines().next().unwrap().to_string();
        assert_ne!(first_key, second_key, "machine change must rewrite the cache key");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn default_sweep_path_honors_env_override_and_workspace_root() {
        // Without the override, the path is absolute (workspace-rooted),
        // not relative to whatever CWD the binary happens to run in.
        std::env::remove_var("PCAP_RESULTS_DIR");
        let default = default_sweep_path();
        assert!(default.is_absolute(), "default path must not be CWD-relative: {default:?}");
        assert!(default.ends_with("results/sweep.tsv"), "{default:?}");
        let root = default.parent().unwrap().parent().unwrap();
        assert!(root.join("Cargo.toml").exists(), "{root:?} should be the workspace root");

        std::env::set_var("PCAP_RESULTS_DIR", "/tmp/pcap-override");
        let overridden = default_sweep_path();
        std::env::remove_var("PCAP_RESULTS_DIR");
        assert_eq!(overridden, std::path::PathBuf::from("/tmp/pcap-override/sweep.tsv"));
    }

    #[test]
    fn measured_region_subtracts_warmup() {
        let cfg = ExperimentConfig {
            ranks: 2,
            warmup_iterations: 1,
            measured_iterations: 2,
            ..Default::default()
        };
        let g = cfg.generate(Benchmark::CoMD);
        let m = MachineSpec::e5_2670();
        let fr = TaskFrontiers::build(&g, &m);
        let s = solve_decomposed(&g, &m, &fr, 2.0 * 60.0, &FixedLpOptions::default()).unwrap();
        let full = measured_region(&g, &s.vertex_times, 0);
        let trimmed = measured_region(&g, &s.vertex_times, 1);
        assert!(trimmed < full);
        assert!(trimmed > 0.0);
        // Warm-up is one of three iterations: roughly a third is removed.
        let ratio = trimmed / full;
        assert!((0.45..0.9).contains(&ratio), "ratio {ratio}");
    }

    /// Acceptance check for the sweep API: on CoMD at the Figure 9
    /// experiment configuration, the warm-started parallel sweep returns
    /// makespans bitwise identical to the sequential cold-start loop.
    #[test]
    fn sweep_api_matches_cold_loop_on_fig09_comd() {
        let cfg = ExperimentConfig::default(); // fig09 configuration
        let g = cfg.generate(Benchmark::CoMD);
        let m = MachineSpec::e5_2670();
        let fr = TaskFrontiers::build(&g, &m);
        // 8 per-socket caps spanning and exceeding the paper's 30–80 W range.
        let caps: Vec<f64> = (0..8).map(|k| (30.0 + 10.0 * k as f64) * cfg.ranks as f64).collect();
        let pts = solve_sweep(&g, &m, &fr, &caps, &SweepOptions::default());
        assert_eq!(pts.len(), caps.len());
        for (pt, &cap) in pts.iter().zip(&caps) {
            let cold = solve_decomposed(&g, &m, &fr, cap, &FixedLpOptions::default());
            match (&pt.schedule, &cold) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(
                        a.makespan_s.to_bits(),
                        b.makespan_s.to_bits(),
                        "cap {cap}: sweep {} vs cold {}",
                        a.makespan_s,
                        b.makespan_s
                    );
                    assert!(a.stats.iterations > 0, "cap {cap}: no iterations recorded");
                    assert!(a.stats.wall_time_s > 0.0, "cap {cap}: no wall time recorded");
                }
                (Err(_), Err(_)) => {}
                _ => panic!("feasibility mismatch at cap {cap}"),
            }
        }
    }

    /// Regression: this small CoMD configuration has a degenerate optimum
    /// in its second window where warm and cold pivot paths used to stop at
    /// different (equally optimal) bases whose refined makespans differed
    /// in the last ulp. The canonical-optimum phase must collapse both onto
    /// the same vertex, so a certified sweep passes the strict bitwise gate
    /// with every solve canonicalized — no ulp allowance anywhere.
    #[test]
    fn certified_sweep_is_exact_at_degenerate_optima() {
        let cfg = ExperimentConfig {
            ranks: 2,
            warmup_iterations: 1,
            measured_iterations: 1,
            ..Default::default()
        };
        let m = MachineSpec::e5_2670();
        let g = cfg.generate(Benchmark::CoMD);
        let fr = TaskFrontiers::build(&g, &m);
        let caps: Vec<f64> = [50.0, 80.0].iter().map(|w| w * cfg.ranks as f64).collect();
        let mut opts = SweepOptions { certify: true, ..Default::default() };
        opts.fixed.lp.certify = true;
        for pt in solve_sweep(&g, &m, &fr, &caps, &opts) {
            let s = pt.schedule.unwrap_or_else(|e| panic!("cap {}: {e}", pt.cap_w));
            assert!(s.makespan_s > 0.0);
            assert_eq!(
                s.stats.certified, s.stats.solves,
                "cap {}: every solve must carry a duality certificate",
                pt.cap_w
            );
            assert_eq!(
                s.stats.canonicalized, s.stats.solves,
                "cap {}: every solve must reach the canonical vertex",
                pt.cap_w
            );
        }
    }

    #[test]
    fn evaluate_benchmark_populates_solver_telemetry() {
        let cfg = ExperimentConfig {
            ranks: 2,
            warmup_iterations: 1,
            measured_iterations: 1,
            ..Default::default()
        };
        let m = MachineSpec::e5_2670();
        let rows = evaluate_benchmark(Benchmark::CoMD, &m, &cfg, &[50.0, 80.0], false);
        for r in &rows {
            assert!(r.times.lp.is_some(), "cap {} unexpectedly infeasible", r.per_socket_w);
            assert!(r.lp_stats.solves > 0, "cap {}: no solves recorded", r.per_socket_w);
            assert!(r.lp_stats.iterations > 0, "cap {}: no iterations", r.per_socket_w);
            assert!(r.lp_stats.wall_time_s > 0.0, "cap {}: no wall time", r.per_socket_w);
        }
    }

    #[test]
    fn evaluate_at_cap_orders_methods_sanely() {
        let cfg = ExperimentConfig {
            ranks: 4,
            warmup_iterations: 1,
            measured_iterations: 2,
            ..Default::default()
        };
        let g = cfg.generate(Benchmark::BtMz);
        let m = MachineSpec::e5_2670();
        let fr = TaskFrontiers::build(&g, &m);
        let t = evaluate_at_cap(&g, &m, &fr, &cfg, 40.0, true);
        let (lp, st) = (t.lp.unwrap(), t.static_.unwrap());
        assert!(lp <= st * 1.001, "LP {lp} must not exceed Static {st}");
    }
}
