//! Minimal aligned-table / TSV printing for experiment binaries.
//!
//! Every figure binary prints (a) a human-readable aligned table and (b)
//! `#tsv`-prefixed lines that plotting scripts can grep out — no external
//! serialization crates needed.

/// A simple column-aligned table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the aligned table.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut width = vec![0usize; ncol];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = width[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (ncol - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &width));
            out.push('\n');
        }
        out
    }

    /// Renders machine-readable TSV lines, each prefixed with `#tsv`.
    pub fn render_tsv(&self, tag: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("#tsv\t{tag}\t{}\n", self.header.join("\t")));
        for r in &self.rows {
            out.push_str(&format!("#tsv\t{tag}\t{}\n", r.join("\t")));
        }
        out
    }
}

/// Formats an optional seconds value ("-" when infeasible).
pub fn fmt_opt_s(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.3}"),
        None => "-".to_string(),
    }
}

/// Formats an optional percentage.
pub fn fmt_opt_pct(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.1}"),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_and_tsvs() {
        let mut t = Table::new(&["cap", "lp", "static"]);
        t.row(vec!["30".into(), "1.234".into(), "2.5".into()]);
        t.row(vec!["80".into(), "0.9".into(), "1.0".into()]);
        let s = t.render();
        assert!(s.contains("cap"));
        assert!(s.lines().count() == 4);
        let tsv = t.render_tsv("fig9");
        assert_eq!(tsv.lines().count(), 3);
        assert!(tsv.starts_with("#tsv\tfig9\tcap"));
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
