//! Shared rendering for the per-benchmark improvement figures (11, 13–15).

use crate::harness::{
    cached_sweep, default_sweep_path, improvement_pct, ExperimentConfig, SWEEP_CAPS,
};
use crate::table::{fmt_opt_pct, Table};
use pcap_apps::Benchmark;
use pcap_machine::MachineSpec;

/// Summary statistics of the LP-vs-Static column, for shape checks against
/// the paper's reported max/median/min.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FigureStats {
    pub lp_vs_static_max: f64,
    pub lp_vs_static_median: f64,
    pub lp_vs_static_min: f64,
    pub conductor_vs_static_mean: f64,
}

/// Prints one "LP and Conductor improvement vs Static" figure for `bench`,
/// restricted to `caps` (the per-figure x-range used by the paper), and
/// returns the summary statistics.
pub fn per_benchmark_figure(bench: Benchmark, caps: &[f64], tag: &str) -> FigureStats {
    let machine = MachineSpec::e5_2670();
    let cfg = ExperimentConfig::default();
    let sweep = cached_sweep(&default_sweep_path(), &machine, &cfg, &SWEEP_CAPS);
    let rows = &sweep.iter().find(|(b, _)| *b == bench).unwrap().1;

    let mut table = Table::new(&["W/socket", "LP_vs_Static_pct", "Conductor_vs_Static_pct"]);
    let mut lp_imps = vec![];
    let mut cond_imps = vec![];
    for row in rows.iter().filter(|r| caps.contains(&r.per_socket_w)) {
        let t = row.times;
        let lp = match (t.static_, t.lp) {
            (Some(s), Some(l)) => {
                let v = improvement_pct(s, l);
                lp_imps.push(v);
                Some(v)
            }
            _ => None,
        };
        let cond = match (t.static_, t.conductor) {
            (Some(s), Some(c)) => {
                let v = improvement_pct(s, c);
                cond_imps.push(v);
                Some(v)
            }
            _ => None,
        };
        table.row(vec![format!("{:.0}", row.per_socket_w), fmt_opt_pct(lp), fmt_opt_pct(cond)]);
    }
    println!("=== {tag}: {} — LP and Conductor improvement vs Static ===", bench.name());
    println!("{}", table.render());
    println!("{}", table.render_tsv(tag));

    lp_imps.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let stats = FigureStats {
        lp_vs_static_max: lp_imps.last().copied().unwrap_or(f64::NAN),
        lp_vs_static_median: lp_imps.get(lp_imps.len() / 2).copied().unwrap_or(f64::NAN),
        lp_vs_static_min: lp_imps.first().copied().unwrap_or(f64::NAN),
        conductor_vs_static_mean: if cond_imps.is_empty() {
            f64::NAN
        } else {
            cond_imps.iter().sum::<f64>() / cond_imps.len() as f64
        },
    };
    println!(
        "LP vs Static: max {:.1}%, median {:.1}%, min {:.1}%; Conductor vs Static mean {:.1}%",
        stats.lp_vs_static_max,
        stats.lp_vs_static_median,
        stats.lp_vs_static_min,
        stats.conductor_vs_static_mean
    );
    stats
}
