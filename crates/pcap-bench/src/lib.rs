//! # pcap-bench — experiment harness
//!
//! One binary per figure/table of the paper (see `src/bin/`), built on the
//! shared measurement machinery in [`harness`]:
//!
//! * generate a benchmark trace (warm-up + measured iterations),
//! * compute the LP bound, simulate Static / Conductor / ConfigOnly,
//! * measure time over the post-warm-up region only (the paper discards the
//!   first three iterations of every run, §5.3),
//! * sweep power caps in parallel across worker threads.
//!
//! Criterion performance benches for the solver/simulator/frontier
//! machinery live in `benches/`.

pub mod figures;
pub mod harness;
pub mod table;

pub use harness::{
    cached_sweep, cached_sweep_exact, default_sweep_path, evaluate_at_cap, evaluate_benchmark,
    evaluate_benchmark_exact, improvement_pct, measured_region, sweep_mode_requested, BenchSweep,
    CapRow, ExperimentConfig, MethodTimes, MAX_CACHED_BREAKPOINTS, SWEEP_CAPS,
};
