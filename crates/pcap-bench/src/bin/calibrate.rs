//! Model-calibration diagnostic: prints the LP / Static / Conductor /
//! ConfigOnly sweep for every benchmark so the machine and workload
//! parameters can be tuned to reproduce the paper's qualitative shape.
//! Not one of the paper's artefacts — a development tool.

use pcap_apps::Benchmark;
use pcap_bench::harness::{evaluate_benchmark, improvement_pct, ExperimentConfig};
use pcap_bench::table::{fmt_opt_pct, fmt_opt_s, Table};
use pcap_machine::MachineSpec;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ranks: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(16);
    let iters: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(5);

    let machine = MachineSpec::e5_2670();
    let cfg = ExperimentConfig {
        ranks,
        warmup_iterations: 3,
        measured_iterations: iters,
        ..Default::default()
    };
    let caps = [30.0, 40.0, 50.0, 60.0, 70.0, 80.0];
    let only: Option<String> = args.get(3).cloned();

    for bench in Benchmark::ALL {
        if let Some(o) = &only {
            if !bench.name().eq_ignore_ascii_case(o) {
                continue;
            }
        }
        let t0 = std::time::Instant::now();
        let rows = evaluate_benchmark(bench, &machine, &cfg, &caps, true);
        let dt = t0.elapsed().as_secs_f64();
        let mut table = Table::new(&[
            "W/socket",
            "LP(s)",
            "Static(s)",
            "Cond(s)",
            "CfgOnly(s)",
            "LPvsStatic%",
            "LPvsCond%",
            "CondVsStatic%",
        ]);
        for r in rows {
            let t = r.times;
            let lp_vs_static = match (t.static_, t.lp) {
                (Some(s), Some(l)) => Some(improvement_pct(s, l)),
                _ => None,
            };
            let lp_vs_cond = match (t.conductor, t.lp) {
                (Some(c), Some(l)) => Some(improvement_pct(c, l)),
                _ => None,
            };
            let cond_vs_static = match (t.static_, t.conductor) {
                (Some(s), Some(c)) => Some(improvement_pct(s, c)),
                _ => None,
            };
            table.row(vec![
                format!("{:.0}", r.per_socket_w),
                fmt_opt_s(t.lp),
                fmt_opt_s(t.static_),
                fmt_opt_s(t.conductor),
                fmt_opt_s(t.config_only),
                fmt_opt_pct(lp_vs_static),
                fmt_opt_pct(lp_vs_cond),
                fmt_opt_pct(cond_vs_static),
            ]);
        }
        println!("== {} (ranks={ranks}, {:.1}s) ==", bench.name(), dt);
        println!("{}", table.render());
    }
}
