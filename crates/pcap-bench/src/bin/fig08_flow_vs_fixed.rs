//! **Figure 8** — flow ILP vs. fixed-vertex-order LP on the two-process
//! asynchronous message exchange, across 106 power limits.
//!
//! Paper result: "For all but three of the 106 power limits tested, the two
//! formulations agree on the application schedule time to within 1.9%", and
//! where they disagree, "less than a watt of additional power" closes the
//! gap. The flow ILP relaxes the fixed event order, so it can never be
//! slower.

use pcap_apps::exchange::{generate, ExchangeParams};
use pcap_bench::table::Table;
use pcap_core::{solve_fixed_order, solve_flow, FixedLpOptions, FlowOptions, TaskFrontiers};
use pcap_machine::MachineSpec;

fn main() {
    let machine = MachineSpec::e5_2670();
    let g = generate(&ExchangeParams::default());
    let frontiers = TaskFrontiers::build(&g, &machine);
    println!(
        "exchange DAG: {} edges ({} tasks) — within the paper's ~30-edge ILP bound",
        g.num_edges(),
        g.num_tasks()
    );

    // 106 total-power limits. The exchange needs both sockets powered; the
    // interesting band starts just above the two cheapest frontier points.
    let n_limits = 106;
    let (lo, hi) = (46.0, 98.5);
    let mut table = Table::new(&["total_power_w", "fixed_s", "flow_s", "flow_gain_pct"]);
    let (mut agree, mut within, mut infeasible) = (0u32, 0u32, 0u32);
    let mut max_gap: f64 = 0.0;
    for k in 0..n_limits {
        let cap = lo + (hi - lo) * k as f64 / (n_limits - 1) as f64;
        let fixed = solve_fixed_order(&g, &machine, &frontiers, cap, &FixedLpOptions::default());
        let flow = solve_flow(&g, &machine, &frontiers, cap, &FlowOptions::default());
        match (fixed, flow) {
            (Ok(fx), Ok(fl)) => {
                let gap = (fx.makespan_s - fl.makespan_s) / fl.makespan_s;
                max_gap = max_gap.max(gap);
                if gap <= 0.001 {
                    agree += 1;
                } else if gap <= 0.019 {
                    within += 1;
                }
                table.row(vec![
                    format!("{cap:.2}"),
                    format!("{:.4}", fx.makespan_s),
                    format!("{:.4}", fl.makespan_s),
                    format!("{:.2}", gap * 100.0),
                ]);
            }
            (Err(_), Err(_)) => {
                infeasible += 1;
                table.row(vec![format!("{cap:.2}"), "-".into(), "-".into(), "-".into()]);
            }
            (fx, fl) => {
                // One formulation feasible, the other not: the flow ILP is
                // strictly more permissive, so only (fixed err, flow ok) can
                // occur — report it.
                let fl_s = fl.map(|s| format!("{:.4}", s.makespan_s)).unwrap_or("-".into());
                let fx_s = fx.map(|s| format!("{:.4}", s.makespan_s)).unwrap_or("-".into());
                table.row(vec![format!("{cap:.2}"), fx_s, fl_s, "n/a".into()]);
            }
        }
    }
    println!("{}", table.render());
    println!("{}", table.render_tsv("fig8"));
    let feasible = n_limits - infeasible;
    println!(
        "summary: {feasible} feasible limits; {agree} agree (<0.1%), {within} within 1.9%, \
         max flow advantage {:.2}% (paper: all but 3 of 106 within 1.9%)",
        max_gap * 100.0
    );
}
