//! Measures the parametric cap ramp ([`pcap_core::SweepMode::Ramp`])
//! against warm-started per-cap solves (`SweepMode::PerCap`) and writes
//! `results/BENCH-ramp.json`.
//!
//! Two workloads:
//!
//! 1. the 16-cap CoMD sweep (ranks=32, 25–100 W/socket in 5 W steps) — the
//!    same fixture as `results/BENCH-lp-engines.json`, modes interleaved
//!    per repetition, per-cap minima compared;
//! 2. the full four-benchmark Figure 9 grid (LP bound only, simulator
//!    policies excluded) — one measured pass per mode after a warm-up.
//!
//! Run with `cargo run --release -p pcap-bench --bin bench_ramp`. The two
//! modes are asserted bitwise-identical on every feasible cap before any
//! number is reported — a disagreement aborts the bench.

use std::time::Instant;

use pcap_apps::{AppParams, Benchmark};
use pcap_core::{
    solve_sweep_exact, total_stats, SweepMode, SweepOptions, SweepResult, TaskFrontiers,
};
use pcap_dag::TaskGraph;
use pcap_lp::SolveStats;
use pcap_machine::MachineSpec;

fn opts(mode: SweepMode) -> SweepOptions {
    SweepOptions { workers: 1, mode, ..Default::default() }
}

/// One timed sweep: external wall + the result.
fn timed(
    g: &TaskGraph,
    m: &MachineSpec,
    fr: &TaskFrontiers,
    caps: &[f64],
    mode: SweepMode,
) -> (f64, SweepResult) {
    let t0 = Instant::now();
    let r = solve_sweep_exact(g, m, fr, caps, &opts(mode));
    (t0.elapsed().as_secs_f64(), r)
}

/// Sum of per-point LP wall time (the solver-side cost, excluding window
/// construction — which both modes share and pay once per sweep).
fn lp_wall_s(r: &SweepResult) -> f64 {
    total_stats(&r.points).wall_time_s
}

fn assert_bitwise(a: &SweepResult, b: &SweepResult, what: &str) {
    for (x, y) in a.points.iter().zip(&b.points) {
        match (x.makespan_s(), y.makespan_s()) {
            (Some(p), Some(q)) => assert_eq!(
                p.to_bits(),
                q.to_bits(),
                "{what}: ramp vs per-cap diverge at cap {} ({p} vs {q})",
                x.cap_w
            ),
            (None, None) => {}
            _ => panic!("{what}: feasibility mismatch at cap {}", x.cap_w),
        }
    }
}

fn main() {
    let machine = MachineSpec::e5_2670();

    // Workload 1: 16-cap CoMD, modes interleaved per repetition.
    let ranks = 32u32;
    let g = Benchmark::CoMD.generate(&AppParams { ranks, iterations: 3, seed: 0x5C15 });
    let fr = TaskFrontiers::build(&g, &machine);
    let caps: Vec<f64> = (0..16).map(|k| (25.0 + 5.0 * k as f64) * ranks as f64).collect();

    let reps = 11usize; // first is warm-up, discarded
    let n = caps.len();
    let mut percap_cap_min = vec![f64::INFINITY; n];
    let mut ramp_cap_min = vec![f64::INFINITY; n];
    let mut percap_total_min = f64::INFINITY;
    let mut ramp_total_min = f64::INFINITY;
    let mut percap_ext_min = f64::INFINITY;
    let mut ramp_ext_min = f64::INFINITY;
    let mut percap_stats = SolveStats::default();
    let mut ramp_stats = SolveStats::default();
    let mut breakpoints: Vec<f64> = Vec::new();
    for rep in 0..reps {
        let (pc_ext, pc) = timed(&g, &machine, &fr, &caps, SweepMode::PerCap);
        let (rp_ext, rp) = timed(&g, &machine, &fr, &caps, SweepMode::Ramp);
        assert_bitwise(&rp, &pc, "comd16");
        if rep == 0 {
            continue;
        }
        for (i, (p, r)) in pc.points.iter().zip(&rp.points).enumerate() {
            if let Ok(s) = &p.schedule {
                percap_cap_min[i] = percap_cap_min[i].min(s.stats.wall_time_s);
            }
            if let Ok(s) = &r.schedule {
                ramp_cap_min[i] = ramp_cap_min[i].min(s.stats.wall_time_s);
            }
        }
        percap_total_min = percap_total_min.min(lp_wall_s(&pc));
        ramp_total_min = ramp_total_min.min(lp_wall_s(&rp));
        percap_ext_min = percap_ext_min.min(pc_ext);
        ramp_ext_min = ramp_ext_min.min(rp_ext);
        percap_stats = total_stats(&pc.points);
        ramp_stats = total_stats(&rp.points);
        breakpoints = rp.breakpoints;
    }

    let mut per_cap_json = String::new();
    for (i, &cap) in caps.iter().enumerate() {
        let (p, r) = (percap_cap_min[i], ramp_cap_min[i]);
        if !p.is_finite() || !r.is_finite() {
            continue; // infeasible cap
        }
        per_cap_json.push_str(&format!(
            "    {{ \"cap_w\": {cap}, \"percap_ms\": {:.3}, \"ramp_ms\": {:.3}, \
             \"speedup\": {:.2} }},\n",
            p * 1e3,
            r * 1e3,
            p / r
        ));
    }
    let per_cap_json = per_cap_json.trim_end().trim_end_matches(',').to_string();

    // Workload 2: full fig09 grid, LP bound only, one measured pass per
    // mode after a shared warm-up on CoMD.
    let cfg_iters = 15u32; // warmup 3 + measured 12, the fig09 configuration
    let fig_caps: Vec<f64> =
        [30.0, 40.0, 50.0, 60.0, 70.0, 80.0].iter().map(|w| w * ranks as f64).collect();
    let mut fig_percap_s = 0.0;
    let mut fig_ramp_s = 0.0;
    let mut fig_percap_iters = 0u64;
    let mut fig_ramp_iters = 0u64;
    let mut fig_bps = 0usize;
    let mut fig_interp = 0u64;
    for bench in Benchmark::ALL {
        let g = bench.generate(&AppParams { ranks, iterations: cfg_iters, seed: 0x5C15 });
        let fr = TaskFrontiers::build(&g, &machine);
        let (_, warm) = timed(&g, &machine, &fr, &fig_caps, SweepMode::PerCap); // warm-up
        let (_, pc) = timed(&g, &machine, &fr, &fig_caps, SweepMode::PerCap);
        let (_, rp) = timed(&g, &machine, &fr, &fig_caps, SweepMode::Ramp);
        assert_bitwise(&rp, &pc, bench.name());
        assert_bitwise(&pc, &warm, bench.name());
        let (ps, rs) = (total_stats(&pc.points), total_stats(&rp.points));
        fig_percap_s += ps.wall_time_s;
        fig_ramp_s += rs.wall_time_s;
        fig_percap_iters += ps.iterations;
        fig_ramp_iters += rs.iterations;
        fig_bps += rp.breakpoints.len();
        fig_interp += rs.caps_interpolated;
        eprintln!(
            "[bench-ramp] {}: percap {:.2}s vs ramp {:.2}s ({:.2}x), {} breakpoints",
            bench.name(),
            ps.wall_time_s,
            rs.wall_time_s,
            ps.wall_time_s / rs.wall_time_s,
            rp.breakpoints.len()
        );
    }

    let date = std::env::var("PCAP_BENCH_DATE").unwrap_or_else(|_| "unknown".into());
    let json = format!(
        r#"{{
  "bench": "parametric cap ramp vs warm per-cap solves, LP sweep wall time",
  "date": "{date}",
  "workload": {{
    "app": "CoMD",
    "ranks": {ranks},
    "iterations": 3,
    "seed": "0x5C15",
    "caps_w": "per-socket 25-100 W in 5 W steps, scaled by {ranks} ranks (800-3200 W)",
    "sweep": "workers=1, warm_start=true, per-window context reuse; modes interleaved per repetition ({measured} measured reps, first discarded), per-cap minimum of stats.wall_time_s compared"
  }},
  "bitwise": "every rep asserted ramp == per-cap bit for bit on all feasible caps before timing was recorded",
  "per_cap": [
{per_cap_json}
  ],
  "summary": {{
    "total_lp_wall_ms": {{ "percap": {pc_total:.1}, "ramp": {rp_total:.1} }},
    "total_speedup": {total_speedup:.2},
    "end_to_end_sweep_ms": {{ "percap": {pc_ext:.1}, "ramp": {rp_ext:.1} }},
    "end_to_end_speedup": {ext_speedup:.2},
    "percap_iterations": {pc_iters},
    "ramp_iterations": {rp_iters},
    "ramp_breakpoints": {bp_count},
    "ramp_pivots": {rp_steps},
    "caps_interpolated": {rp_interp},
    "percap_interval_skips": {pc_skips}
  }},
  "full_figure_sweep": {{
    "workload": "fig09 grid: BT/CoMD/LULESH/SP x 6 caps (30-80 W/socket), ranks={ranks}, warmup=3, measured=12 iterations, LP bound only",
    "lp_wall_s": {{ "percap": {fig_pc:.1}, "ramp": {fig_rp:.1} }},
    "lp_speedup": {fig_speedup:.2},
    "simplex_iterations": {{ "percap": {fig_pc_iters}, "ramp": {fig_rp_iters} }},
    "breakpoints": {fig_bps},
    "caps_interpolated": {fig_interp}
  }},
  "notes": [
    "The ramp holds one optimal basis per window and walks it up the cap grid: grid caps inside a linearity interval cost one FTRAN (direction) plus canonicalize/extract, never a dual-simplex solve; basis changes happen exactly at the reported breakpoints via zero-length dual-ratio-test pivots with incrementally maintained reduced costs (refreshed at refactorizations).",
    "Per-cap mode here already includes the basis-interval skip (a warm basis re-certifying optimal at the next cap answers with one BTRAN) and adaptive Devex/Dantzig pricing, so the baseline is the strongest per-cap configuration.",
    "Both modes share window construction, the canonical-optimum phase and extraction per emitted cap; the ramp's win is the eliminated per-cap solve machinery (rebind/validate/restore/price), its cost is walking every breakpoint between grid caps.",
    "Regime summary: the ramp wins where grid jumps are large relative to breakpoint density (the coarse fig09 grid, where dual restoration wanders far past the minimal pivot path) and roughly ties on the dense 5 W grid, where a warm dual restoration crosses a cap step in fewer pivots than the number of exact breakpoints inside it. The exact breakpoint list is what per-cap mode cannot produce at any price."
  ]
}}
"#,
        measured = reps - 1,
        pc_total = percap_total_min * 1e3,
        rp_total = ramp_total_min * 1e3,
        total_speedup = percap_total_min / ramp_total_min,
        pc_ext = percap_ext_min * 1e3,
        rp_ext = ramp_ext_min * 1e3,
        ext_speedup = percap_ext_min / ramp_ext_min,
        pc_iters = percap_stats.iterations,
        rp_iters = ramp_stats.iterations,
        bp_count = breakpoints.len(),
        rp_steps = ramp_stats.ramp_steps,
        rp_interp = ramp_stats.caps_interpolated,
        pc_skips = percap_stats.basis_interval_skips,
        fig_pc = fig_percap_s,
        fig_rp = fig_ramp_s,
        fig_speedup = fig_percap_s / fig_ramp_s,
        fig_pc_iters = fig_percap_iters,
        fig_rp_iters = fig_ramp_iters,
    );

    let out = match std::env::var("PCAP_RESULTS_DIR") {
        Ok(dir) if !dir.is_empty() => std::path::PathBuf::from(dir).join("BENCH-ramp.json"),
        _ => {
            let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
            manifest.ancestors().nth(2).unwrap().join("results").join("BENCH-ramp.json")
        }
    };
    if let Some(dir) = out.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out, &json).expect("write BENCH-ramp.json");
    println!("{json}");
    eprintln!("[bench-ramp] wrote {}", out.display());
}
