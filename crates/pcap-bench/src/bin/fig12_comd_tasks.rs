//! **Figure 12** — CoMD task duration vs. power for long-running (>0.5 s)
//! tasks over 100 iterations at an average per-socket constraint of 30 W.
//!
//! Paper shape: the LP allocates power non-uniformly — many tasks draw more
//! than 30 W (up to ~36 W) yet the job-level constraint holds, and the
//! longest task stays near 1.2 s. Static pins every socket at 30 W, RAPL
//! throttles, and task times spread up past 1.3–1.47 s.

use pcap_apps::{comd, AppParams};
use pcap_bench::table::Table;
use pcap_core::{solve_decomposed, verify_schedule, FixedLpOptions, TaskFrontiers};
use pcap_dag::EdgeId;
use pcap_machine::MachineSpec;
use pcap_sched::StaticPolicy;
use pcap_sim::{SimOptions, Simulator};

fn main() {
    let machine = MachineSpec::e5_2670();
    let ranks = 32u32;
    let iterations = 100u32;
    let per_socket = 30.0;
    let job_cap = per_socket * ranks as f64;
    let min_duration = 0.5;

    let g = comd::generate(&AppParams { ranks, iterations, seed: 0x5C15 });
    let frontiers = TaskFrontiers::build(&g, &machine);

    // LP schedule: per-task (power, duration) from the choices.
    let sched = solve_decomposed(&g, &machine, &frontiers, job_cap, &FixedLpOptions::default())
        .expect("CoMD is schedulable at 30 W/socket");
    let v = verify_schedule(&g, &sched);
    assert!(v.ok(job_cap, 1e-6), "LP schedule must respect the job cap: {v:?}");

    let mut table = Table::new(&["method", "power_w", "duration_s"]);
    let mut lp_max_dur: f64 = 0.0;
    let mut lp_above_cap = 0usize;
    let mut lp_count = 0usize;
    for (i, c) in sched.choices.iter().enumerate() {
        if let Some(c) = c {
            if c.duration_s >= min_duration {
                table.row(vec![
                    "LP".into(),
                    format!("{:.3}", c.power_w),
                    format!("{:.4}", c.duration_s),
                ]);
                lp_max_dur = lp_max_dur.max(c.duration_s);
                lp_count += 1;
                if c.power_w > per_socket {
                    lp_above_cap += 1;
                }
                let _ = EdgeId::from_index(i);
            }
        }
    }

    // Static: simulate and read the task records.
    let mut stat = StaticPolicy::uniform(job_cap, ranks, machine.max_threads);
    let res = Simulator::new(&g, &machine, SimOptions::default()).run(&mut stat).unwrap();
    let mut static_max: f64 = 0.0;
    let mut static_count = 0usize;
    for t in res.long_tasks(min_duration) {
        table.row(vec![
            "Static".into(),
            format!("{:.3}", t.avg_power_w),
            format!("{:.4}", t.duration()),
        ]);
        static_max = static_max.max(t.duration());
        static_count += 1;
    }

    println!("=== Figure 12: CoMD long-task duration vs power @ 30 W/socket ===");
    println!("{}", table.render_tsv("fig12"));
    println!("limit line: {per_socket} W per socket (Static's hard cap)");
    println!(
        "LP: {lp_count} long tasks, {lp_above_cap} draw more than {per_socket} W \
         (job cap still respected: max event power {:.1} W <= {job_cap} W), \
         longest task {:.3} s",
        v.max_event_power_w, lp_max_dur
    );
    println!("Static: {static_count} long tasks, longest {:.3} s", static_max);
    println!(
        "paper reference: LP longest ~1.2 s with many tasks >30 W (up to 36 W); \
         Static tasks routinely above 1.3 s and as high as 1.47 s"
    );
    assert!(lp_above_cap > 0, "LP must exploit non-uniform power");
    assert!(static_max > lp_max_dur, "Static's longest task must exceed the LP's");
}
