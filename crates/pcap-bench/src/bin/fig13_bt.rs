//! **Figure 13** — BT-MZ: LP and Conductor improvement vs. Static, 30–70 W
//! per socket.
//!
//! Paper shape: at 30 W Static trails the LP by ~75% and Conductor by ~24%
//! (both driven by BT's static zone imbalance); at high caps the three
//! methods converge to within ~5%.

use pcap_apps::Benchmark;
use pcap_bench::figures::per_benchmark_figure;

fn main() {
    let caps = [30.0, 40.0, 50.0, 60.0, 70.0];
    let stats = per_benchmark_figure(Benchmark::BtMz, &caps, "fig13");
    println!("paper reference: LP vs Static up to 74.9% at 30 W; ~converged at 70 W");
    assert!(
        stats.lp_vs_static_max > 40.0,
        "BT must show large low-power headroom (got {:.1}%)",
        stats.lp_vs_static_max
    );
}
