//! **Figure 1 + Table 1** — time vs. processor power for one CoMD task
//! across the full configuration space (8 threads × 15 DVFS states), with
//! the convex Pareto frontier, and the paper's Table-1 sample of
//! Pareto-efficient configurations.
//!
//! Shape checks reproduced from the paper:
//! * for a fixed thread count, power rises and time falls with frequency;
//! * configurations with fewer than the maximum threads are Pareto-efficient
//!   only at the low-power end (near the minimum frequency).

use pcap_apps::{comd, AppParams};
use pcap_bench::table::Table;
use pcap_core::TaskFrontiers;
use pcap_machine::MachineSpec;

fn main() {
    let machine = MachineSpec::e5_2670();
    let g = comd::generate(&AppParams { ranks: 4, iterations: 1, seed: 0x5C15 });
    // The first force-computation task of rank 0 plays the Figure-1 role.
    let task_id = g
        .task_ids()
        .into_iter()
        .find(|&e| g.edge(e).task_model().map(|m| m.serial_seconds() > 3.0).unwrap_or(false))
        .expect("CoMD has a force task");
    let model = g.edge(task_id).task_model().unwrap().clone();

    // Full configuration cloud, normalized time like the paper's y-axis.
    let cloud = model.config_space(&machine);
    let t_max = cloud.iter().map(|p| p.time_s).fold(0.0_f64, f64::max);
    let mut cloud_table = Table::new(&["threads", "freq_ghz", "power_w", "time_s", "norm_time"]);
    for p in &cloud {
        cloud_table.row(vec![
            p.config.threads.to_string(),
            format!("{:.1}", p.config.ghz(&machine)),
            format!("{:.2}", p.power_w),
            format!("{:.4}", p.time_s),
            format!("{:.4}", p.time_s / t_max),
        ]);
    }

    let frontiers = TaskFrontiers::build(&g, &machine);
    let frontier = frontiers.get(task_id).unwrap();
    let mut front_table = Table::new(&["i", "freq_ghz", "threads", "power_w", "time_s"]);
    for (i, p) in frontier.points().iter().enumerate() {
        front_table.row(vec![
            i.to_string(),
            format!("{:.1}", p.config.ghz(&machine)),
            p.config.threads.to_string(),
            format!("{:.2}", p.power_w),
            format!("{:.4}", p.time_s),
        ]);
    }

    println!("=== Figure 1: time vs power, one CoMD task ({} configurations) ===", cloud.len());
    println!("{}", cloud_table.render_tsv("fig1-cloud"));
    println!("=== Convex Pareto frontier ({} points) ===", frontier.len());
    println!("{}", front_table.render());
    println!("{}", front_table.render_tsv("fig1-frontier"));

    // Table 1: the Pareto-efficient sample, highest power first (the paper
    // lists descending frequency at 8 threads, then descending threads at
    // the minimum frequency).
    let mut tab1 = Table::new(&["config", "freq_ghz", "threads"]);
    for (i, p) in frontier.points().iter().rev().enumerate() {
        tab1.row(vec![
            format!("C{},{}", task_id.index(), i + 1),
            format!("{:.1}", p.config.ghz(&machine)),
            p.config.threads.to_string(),
        ]);
    }
    println!("=== Table 1: Pareto-efficient configurations ===");
    println!("{}", tab1.render());
    println!("{}", tab1.render_tsv("tab1"));

    // Shape assertions (the claims Figure 1 illustrates).
    let fastest = frontier.max_power();
    assert_eq!(fastest.config.threads as u32, machine.max_threads);
    let few_thread_max_power = frontier
        .points()
        .iter()
        .filter(|p| (p.config.threads as u32) < machine.max_threads)
        .map(|p| p.power_w)
        .fold(f64::NEG_INFINITY, f64::max);
    let all_thread_min_power = frontier
        .points()
        .iter()
        .filter(|p| p.config.threads as u32 == machine.max_threads)
        .map(|p| p.power_w)
        .fold(f64::INFINITY, f64::min);
    if few_thread_max_power.is_finite() {
        assert!(
            few_thread_max_power <= all_thread_min_power + 1e-9,
            "reduced-thread configs must occupy the low-power end"
        );
        println!(
            "check: <{}-thread frontier points only below {:.1} W (paper §3.2) .. ok",
            machine.max_threads, all_thread_min_power
        );
    }
}
