//! Convenience driver: regenerates **every** paper artefact (figures,
//! tables, headline summary) plus the ablations, in order, by invoking the
//! sibling experiment binaries. The shared power sweep is computed once and
//! cached, so the whole suite after the first sweep is minutes, not hours.
//!
//! ```text
//! cargo run --release -p pcap-bench --bin run_all
//! ```

use std::process::Command;

fn main() {
    let bins = [
        "fig01_pareto",
        "fig08_flow_vs_fixed",
        "fig09_lp_vs_static",
        "fig10_lp_vs_conductor",
        "fig11_comd",
        "fig12_comd_tasks",
        "fig13_bt",
        "fig14_sp",
        "fig15_lulesh",
        "tab02_overheads",
        "tab03_lulesh_iteration",
        "summary",
        "abl_noise",
        "abl_imbalance",
        "abl_slack_power",
    ];
    let exe_dir = std::env::current_exe()
        .expect("current exe path")
        .parent()
        .expect("exe directory")
        .to_path_buf();
    let mut failures = Vec::new();
    for bin in bins {
        println!("\n========================================================");
        println!("==> {bin}");
        println!("========================================================");
        let status = Command::new(exe_dir.join(bin)).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("!! {bin} exited with {s}");
                failures.push(bin);
            }
            Err(e) => {
                eprintln!("!! failed to launch {bin}: {e} (build with --release first)");
                failures.push(bin);
            }
        }
    }
    println!("\n========================================================");
    if failures.is_empty() {
        println!("all {} artefacts regenerated successfully", bins.len());
    } else {
        println!("FAILURES: {failures:?}");
        std::process::exit(1);
    }
}
