//! **Figure 10** — potential speedup of LP-derived schedules vs. Conductor,
//! per benchmark, across average per-socket power constraints of 30–80 W.
//!
//! Paper shape: Conductor's distance from the bound is *uncorrelated* with
//! the power constraint; CoMD/SP/LULESH stay within a few percent of the LP
//! while BT trails by tens of percent at tight caps.

use pcap_apps::Benchmark;
use pcap_bench::table::{fmt_opt_pct, Table};
use pcap_bench::{cached_sweep, default_sweep_path, improvement_pct, ExperimentConfig, SWEEP_CAPS};
use pcap_machine::MachineSpec;

fn main() {
    let machine = MachineSpec::e5_2670();
    let cfg = ExperimentConfig::default();
    let sweep = cached_sweep(&default_sweep_path(), &machine, &cfg, &SWEEP_CAPS);

    let mut table = Table::new(&["W/socket", "BT", "CoMD", "LULESH", "SP"]);
    for (k, &cap) in SWEEP_CAPS.iter().enumerate() {
        let mut cells = vec![format!("{cap:.0}")];
        for bench in [Benchmark::BtMz, Benchmark::CoMD, Benchmark::Lulesh, Benchmark::SpMz] {
            let row = &sweep.iter().find(|(b, _)| *b == bench).unwrap().1[k];
            let imp = match (row.times.conductor, row.times.lp) {
                (Some(c), Some(l)) => Some(improvement_pct(c, l)),
                _ => None,
            };
            cells.push(fmt_opt_pct(imp));
        }
        table.row(cells);
    }
    println!("=== Figure 10: LP vs Conductor — potential improvement (%) ===");
    println!("{}", table.render());
    println!("{}", table.render_tsv("fig10"));
}
