//! **Ablation: slack-power accounting** — the event LP assumes a blocked
//! rank keeps drawing its task's full power (paper §3.3 chose this to keep
//! the event count low); the appendix's flow ILP instead charges observed
//! slack power. This ablation quantifies what the conservative assumption
//! costs: solve the same workload while sweeping the machine's *actual*
//! slack-power fraction and compare the LP bound against the realized
//! replay power, showing how much cap headroom the assumption leaves unused.

use pcap_apps::{AppParams, Benchmark};
use pcap_bench::table::Table;
use pcap_core::{replay_schedule, solve_decomposed, FixedLpOptions, ReplayMode, TaskFrontiers};
use pcap_machine::MachineSpec;
use pcap_sim::SimOptions;

fn main() {
    let ranks = 8u32;
    let per_socket = 40.0;
    let cap = per_socket * ranks as f64;
    let g = Benchmark::BtMz.generate(&AppParams { ranks, iterations: 4, seed: 13 });

    let mut table =
        Table::new(&["slack_fraction", "lp_bound_s", "avg_power_w", "utilization_pct", "peak_w"]);
    for frac in [0.2, 0.4, 0.55, 0.7, 0.85, 1.0] {
        let mut machine = MachineSpec::e5_2670();
        machine.slack_power_fraction = frac;
        let frontiers = TaskFrontiers::build(&g, &machine);
        let sched = solve_decomposed(&g, &machine, &frontiers, cap, &FixedLpOptions::default())
            .expect("schedulable");
        let res = replay_schedule(
            &g,
            &machine,
            &frontiers,
            &sched,
            SimOptions::ideal(),
            ReplayMode::Segments,
        )
        .unwrap();
        let avg = res.power.average_power();
        table.row(vec![
            format!("{frac:.2}"),
            format!("{:.3}", sched.makespan_s),
            format!("{avg:.1}"),
            format!("{:.1}", avg / cap * 100.0),
            format!("{:.1}", res.power.max_power()),
        ]);
    }
    println!("=== Ablation: slack-power fraction (BT-MZ @ {per_socket} W/socket) ===");
    println!("{}", table.render());
    println!("{}", table.render_tsv("abl-slack"));
    println!(
        "reading: the LP bound is identical in every row — the formulation budgets \
         slack at full task power regardless of what slack actually draws (§3.3). \
         The realized average power (cap utilization) falls with the machine's true \
         slack fraction: that unharvested margin is the price of a purely linear, \
         few-event model. (Peak power reflects the known transient-overshoot \
         artifact of literal segment replay.)"
    );
}
