//! **Figure 15** — LULESH: LP and Conductor improvement vs. Static, 40–80 W
//! per socket.
//!
//! Paper shape: the LP indicates significant (>14%) headroom over Static at
//! *all* tested caps (Static's 8 throttled threads lose to 5 faster ones —
//! cache contention, Table 3), and Conductor captures ~99% of it.

use pcap_apps::Benchmark;
use pcap_bench::figures::per_benchmark_figure;

fn main() {
    let caps = [40.0, 50.0, 60.0, 70.0, 80.0];
    let stats = per_benchmark_figure(Benchmark::Lulesh, &caps, "fig15");
    println!("paper reference: LP vs Static >14% at all caps; Conductor within ~1–5% of LP");
    assert!(
        stats.lp_vs_static_min > 10.0,
        "LULESH must keep headroom at every cap (got min {:.1}%)",
        stats.lp_vs_static_min
    );
}
