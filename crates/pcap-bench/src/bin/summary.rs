//! **Headline numbers (§1, §6)** — the paper's summary statistics computed
//! from the shared sweep:
//!
//! * Static trails the LP bound by up to **74.9%**;
//! * Conductor trails the LP bound by up to **41.1%**;
//! * Conductor improves on Static by **6.7%** on average;
//! * the LP indicates **10.8%** average potential improvement over Static.

use pcap_bench::table::Table;
use pcap_bench::{cached_sweep, default_sweep_path, improvement_pct, ExperimentConfig, SWEEP_CAPS};
use pcap_machine::MachineSpec;

fn main() {
    let machine = MachineSpec::e5_2670();
    let cfg = ExperimentConfig::default();
    let sweep = cached_sweep(&default_sweep_path(), &machine, &cfg, &SWEEP_CAPS);

    let mut lp_vs_static: Vec<f64> = vec![];
    let mut lp_vs_cond: Vec<f64> = vec![];
    let mut cond_vs_static: Vec<f64> = vec![];
    let mut max_ls = (f64::NEG_INFINITY, "", 0.0);
    let mut max_lc = (f64::NEG_INFINITY, "", 0.0);
    for (bench, rows) in &sweep {
        for r in rows {
            let t = r.times;
            if let (Some(s), Some(l)) = (t.static_, t.lp) {
                let v = improvement_pct(s, l);
                lp_vs_static.push(v);
                if v > max_ls.0 {
                    max_ls = (v, bench.name(), r.per_socket_w);
                }
            }
            if let (Some(c), Some(l)) = (t.conductor, t.lp) {
                let v = improvement_pct(c, l);
                lp_vs_cond.push(v);
                if v > max_lc.0 {
                    max_lc = (v, bench.name(), r.per_socket_w);
                }
            }
            if let (Some(s), Some(c)) = (t.static_, t.conductor) {
                cond_vs_static.push(improvement_pct(s, c));
            }
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;

    let mut table = Table::new(&["statistic", "measured", "paper"]);
    table.row(vec![
        format!("max LP vs Static ({} @ {:.0} W)", max_ls.1, max_ls.2),
        format!("{:.1}%", max_ls.0),
        "74.9% (BT @ 30 W)".into(),
    ]);
    table.row(vec![
        format!("max LP vs Conductor ({} @ {:.0} W)", max_lc.1, max_lc.2),
        format!("{:.1}%", max_lc.0),
        "41.1%".into(),
    ]);
    table.row(vec![
        "mean Conductor improvement over Static".into(),
        format!("{:.1}%", mean(&cond_vs_static)),
        "6.7%".into(),
    ]);
    table.row(vec![
        "mean LP potential improvement over Static".into(),
        format!("{:.1}%", mean(&lp_vs_static)),
        "10.8%".into(),
    ]);
    println!("=== Headline summary (paper §1/§6.3) ===");
    println!("{}", table.render());
    println!("{}", table.render_tsv("summary"));

    assert!(max_ls.0 > 40.0, "large static shortfall must appear at tight caps");
    assert!(mean(&lp_vs_static) > mean(&cond_vs_static), "LP bound above Conductor");
}
