//! **Figure 11** — CoMD: LP and Conductor improvement vs. Static, 30–80 W
//! per socket.
//!
//! Paper shape: LP gains up to 12.6% (median 4.6%, minimum 2.4%);
//! Conductor within 3% of the LP.

use pcap_apps::Benchmark;
use pcap_bench::figures::per_benchmark_figure;
use pcap_bench::SWEEP_CAPS;

fn main() {
    let stats = per_benchmark_figure(Benchmark::CoMD, &SWEEP_CAPS, "fig11");
    println!("paper reference: max 12.6%, median 4.6%, min 2.4%; Conductor within 3% of LP");
    assert!(stats.lp_vs_static_max < 25.0, "CoMD gains should stay mild");
}
