//! **§6.2 overheads** — instrumentation, DVFS-switch and power-reallocation
//! costs, measured from simulated runs and compared to the paper's numbers:
//!
//! * profiler: 34 µs median per MPI call, <0.05% of application time;
//! * LP replay: 145 µs median additional overhead per task (DVFS switches);
//! * reallocation: 566 µs per invocation, amortized over 5–10 Pcontrols.

use pcap_apps::{lulesh, AppParams};
use pcap_bench::table::Table;
use pcap_core::{replay_schedule, solve_decomposed, FixedLpOptions, ReplayMode, TaskFrontiers};
use pcap_machine::MachineSpec;
use pcap_sched::{Conductor, ConductorOptions, StaticPolicy};
use pcap_sim::{SimOptions, Simulator};

fn main() {
    let machine = MachineSpec::e5_2670();
    let ranks = 16u32;
    let per_socket = 50.0;
    let job_cap = per_socket * ranks as f64;
    let g = lulesh::generate(&AppParams { ranks, iterations: 10, seed: 0x5C15 });
    let frontiers = TaskFrontiers::build(&g, &machine);
    let opts = SimOptions::default();

    // Profiler-only overhead: Static with vs without instrumentation.
    let mut ideal_opts = SimOptions::ideal();
    ideal_opts.noise_std = opts.noise_std;
    ideal_opts.seed = opts.seed;
    let mut profiler_opts = ideal_opts.clone();
    profiler_opts.profiler_overhead_s = opts.profiler_overhead_s;
    let base = Simulator::new(&g, &machine, ideal_opts.clone())
        .run(&mut StaticPolicy::uniform(job_cap, ranks, machine.max_threads))
        .unwrap();
    let prof = Simulator::new(&g, &machine, profiler_opts)
        .run(&mut StaticPolicy::uniform(job_cap, ranks, machine.max_threads))
        .unwrap();
    let profiler_share = (prof.makespan_s - base.makespan_s) / base.makespan_s * 100.0;

    // LP replay with full overheads: switch cost per task.
    let sched = solve_decomposed(&g, &machine, &frontiers, job_cap, &FixedLpOptions::default())
        .expect("schedulable");
    let replay_ideal =
        replay_schedule(&g, &machine, &frontiers, &sched, ideal_opts.clone(), ReplayMode::Segments)
            .unwrap();
    let replay_real =
        replay_schedule(&g, &machine, &frontiers, &sched, opts.clone(), ReplayMode::Segments)
            .unwrap();
    let per_task_replay_overhead = replay_real.overhead_s / replay_real.tasks.len() as f64 * 1e6;

    // Conductor: reallocation overhead accounting.
    let mut cond = Conductor::new(
        job_cap,
        ranks,
        machine.max_threads,
        frontiers.clone(),
        ConductorOptions::default(),
    );
    let cres = Simulator::new(&g, &machine, opts.clone()).run(&mut cond).unwrap();

    let mut table = Table::new(&["quantity", "model/measured", "paper"]);
    table.row(vec![
        "profiler overhead per MPI call (µs)".into(),
        format!("{:.0}", opts.profiler_overhead_s * 1e6),
        "34 (median)".into(),
    ]);
    table.row(vec![
        "profiler share of application time (%)".into(),
        format!("{profiler_share:.4}"),
        "< 0.05".into(),
    ]);
    table.row(vec![
        "replay overhead per task, all sources (µs)".into(),
        format!("{per_task_replay_overhead:.0}"),
        "145 (median, DVFS transitions)".into(),
    ]);
    table.row(vec![
        "replay slowdown vs ideal (%)".into(),
        format!(
            "{:.3}",
            (replay_real.makespan_s - replay_ideal.makespan_s) / replay_ideal.makespan_s * 100.0
        ),
        "small".into(),
    ]);
    table.row(vec![
        "reallocation cost per invocation (µs)".into(),
        format!("{:.0}", opts.realloc_overhead_s * 1e6),
        "566 (average)".into(),
    ]);
    table.row(vec![
        "conductor total charged overhead (ms)".into(),
        format!("{:.2}", cres.overhead_s * 1e3),
        "amortized over 5-10 Pcontrols".into(),
    ]);
    println!("=== §6.2 Overheads ===");
    println!("{}", table.render());
    println!("{}", table.render_tsv("tab2"));

    assert!(profiler_share < 0.05, "profiler overhead must stay below 0.05%");
    assert!(per_task_replay_overhead < 400.0, "replay overhead per task stays µs-scale");
}
