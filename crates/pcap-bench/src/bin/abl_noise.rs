//! **Ablation: measurement noise** — how Conductor's distance to the LP
//! bound grows with the noise of its power/duration measurements.
//!
//! The paper attributes Conductor's SP-MZ regression to misidentifying the
//! critical path (§6.4); the misidentification comes from noisy, stale
//! measurements. This ablation quantifies that mechanism: at zero noise the
//! adaptive runtime tracks the bound closely; as noise grows, reallocation
//! thrashing sets in and the well-balanced benchmark regresses below
//! Static — exactly the pathology the paper reports.

use pcap_apps::{AppParams, Benchmark};
use pcap_bench::measured_region;
use pcap_bench::table::Table;
use pcap_core::{solve_decomposed, FixedLpOptions, TaskFrontiers};
use pcap_machine::MachineSpec;
use pcap_sched::{Conductor, ConductorOptions, StaticPolicy};
use pcap_sim::{SimOptions, Simulator};

fn main() {
    let machine = MachineSpec::e5_2670();
    let ranks = 8u32;
    let warmup = 3u32;
    let per_socket = 50.0;
    let cap = per_socket * ranks as f64;
    let g = Benchmark::SpMz.generate(&AppParams { ranks, iterations: warmup + 12, seed: 21 });
    let frontiers = TaskFrontiers::build(&g, &machine);

    let lp = solve_decomposed(&g, &machine, &frontiers, cap, &FixedLpOptions::default())
        .map(|s| measured_region(&g, &s.vertex_times, warmup))
        .expect("schedulable");

    let mut table =
        Table::new(&["noise_std", "static_s", "conductor_s", "cond_vs_static_pct", "lp_gap_pct"]);
    for noise in [0.0, 0.01, 0.02, 0.05, 0.10, 0.20] {
        let opts = SimOptions { noise_std: noise, ..SimOptions::default() };
        let sim = Simulator::new(&g, &machine, opts);
        let st = sim
            .run(&mut StaticPolicy::uniform(cap, ranks, machine.max_threads))
            .map(|r| measured_region(&g, &r.vertex_times, warmup))
            .unwrap();
        // Noise hits both channels: online measurements (simulator) and the
        // exploration-phase profile Conductor's frontiers come from.
        let cond_opts = ConductorOptions { profile_noise_std: noise, ..Default::default() };
        let cd = sim
            .run(&mut Conductor::new(cap, ranks, machine.max_threads, frontiers.clone(), cond_opts))
            .map(|r| measured_region(&g, &r.vertex_times, warmup))
            .unwrap();
        table.row(vec![
            format!("{noise:.2}"),
            format!("{st:.3}"),
            format!("{cd:.3}"),
            format!("{:.2}", (st / cd - 1.0) * 100.0),
            format!("{:.2}", (cd / lp - 1.0) * 100.0),
        ]);
    }
    println!("=== Ablation: Conductor vs measurement noise (SP-MZ @ {per_socket} W/socket) ===");
    println!("LP bound for the measured region: {lp:.3} s");
    println!("{}", table.render());
    println!("{}", table.render_tsv("abl-noise"));
    println!(
        "mechanism check: on the balanced benchmark, higher noise widens \
         Conductor's gap to the bound (paper §6.4's misidentified critical path)"
    );
}
