//! **Figure 14** — SP-MZ: LP and Conductor improvement vs. Static, 40–80 W
//! per socket.
//!
//! Paper shape: SP is well balanced, so the LP shows little headroom (≤~3%)
//! and Conductor is *slower* than Static on average (−1.5%, worst −2.6%):
//! noisy critical-path estimates make it trim the wrong ranks, and DVFS +
//! reallocation overheads are pure cost on a balanced program.

use pcap_apps::Benchmark;
use pcap_bench::figures::per_benchmark_figure;

fn main() {
    let caps = [40.0, 50.0, 60.0, 70.0, 80.0];
    let stats = per_benchmark_figure(Benchmark::SpMz, &caps, "fig14");
    println!(
        "paper reference: Conductor averages −1.5% vs Static (worst −2.6% at 60 W); \
         LP headroom small"
    );
    assert!(stats.lp_vs_static_max < 10.0, "SP should show little headroom");
}
