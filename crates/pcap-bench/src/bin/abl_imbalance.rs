//! **Ablation: load imbalance** — sweep the imbalance of a synthetic
//! workload from perfectly balanced to BT-MZ-extreme and watch where
//! nonuniform power allocation starts to pay.
//!
//! This interpolates between the paper's SP (balanced, no headroom) and BT
//! (4.5× zones, 75% headroom) endpoints and locates the crossover where an
//! adaptive runtime becomes worthwhile at a given cap.

use pcap_apps::{CommPattern, Imbalance, SyntheticSpec};
use pcap_bench::measured_region;
use pcap_bench::table::Table;
use pcap_core::{solve_decomposed, FixedLpOptions, TaskFrontiers};
use pcap_machine::MachineSpec;
use pcap_sched::{Conductor, ConductorOptions, StaticPolicy};
use pcap_sim::{SimOptions, Simulator};

fn main() {
    let machine = MachineSpec::e5_2670();
    let ranks = 8u32;
    let warmup = 3u32;
    let per_socket = 40.0;
    let cap = per_socket * ranks as f64;

    let mut table = Table::new(&[
        "zone_ratio",
        "lp_s",
        "static_s",
        "conductor_s",
        "lp_vs_static_pct",
        "cond_vs_static_pct",
    ]);
    for ratio in [1.0, 1.5, 2.0, 3.0, 4.5, 6.0] {
        let spec = SyntheticSpec {
            ranks,
            iterations: warmup + 10,
            seed: 11,
            task_serial_s: 5.0,
            mem_fraction: 0.3,
            imbalance: if ratio == 1.0 { Imbalance::None } else { Imbalance::Geometric(ratio) },
            comm: CommPattern::RingHalo,
            ..Default::default()
        };
        let g = spec.generate();
        let frontiers = TaskFrontiers::build(&g, &machine);
        let lp = solve_decomposed(&g, &machine, &frontiers, cap, &FixedLpOptions::default())
            .map(|s| measured_region(&g, &s.vertex_times, warmup))
            .expect("schedulable");
        let sim = Simulator::new(&g, &machine, SimOptions::default());
        let st = sim
            .run(&mut StaticPolicy::uniform(cap, ranks, machine.max_threads))
            .map(|r| measured_region(&g, &r.vertex_times, warmup))
            .unwrap();
        let cd = sim
            .run(&mut Conductor::new(
                cap,
                ranks,
                machine.max_threads,
                frontiers.clone(),
                ConductorOptions::default(),
            ))
            .map(|r| measured_region(&g, &r.vertex_times, warmup))
            .unwrap();
        table.row(vec![
            format!("{ratio:.1}"),
            format!("{lp:.3}"),
            format!("{st:.3}"),
            format!("{cd:.3}"),
            format!("{:.1}", (st / lp - 1.0) * 100.0),
            format!("{:.1}", (st / cd - 1.0) * 100.0),
        ]);
    }
    println!("=== Ablation: headroom vs load imbalance @ {per_socket} W/socket ===");
    println!("{}", table.render());
    println!("{}", table.render_tsv("abl-imbalance"));
    println!(
        "reading: ratio 1.0 reproduces the SP regime (no headroom); growing the \
         ratio toward BT's 4.5 opens the gap the paper's Figure 13 shows"
    );
}
