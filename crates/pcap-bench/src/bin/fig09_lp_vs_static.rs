//! **Figure 9** — potential speedup of LP-derived schedules vs. Static,
//! per benchmark, across average per-socket power constraints of 30–80 W.
//!
//! Paper shape: gains are largest at the lowest caps; BT peaks at ~75%;
//! CoMD stays small (2–13%); some benchmarks cannot be scheduled at the
//! lowest constraint.

use pcap_apps::Benchmark;
use pcap_bench::table::{fmt_opt_pct, Table};
use pcap_bench::{cached_sweep, default_sweep_path, improvement_pct, ExperimentConfig, SWEEP_CAPS};
use pcap_machine::MachineSpec;

fn main() {
    let machine = MachineSpec::e5_2670();
    let cfg = ExperimentConfig::default();
    let sweep = cached_sweep(&default_sweep_path(), &machine, &cfg, &SWEEP_CAPS);

    let mut table = Table::new(&["W/socket", "BT", "CoMD", "LULESH", "SP"]);
    for (k, &cap) in SWEEP_CAPS.iter().enumerate() {
        let mut cells = vec![format!("{cap:.0}")];
        for bench in [Benchmark::BtMz, Benchmark::CoMD, Benchmark::Lulesh, Benchmark::SpMz] {
            let row = &sweep.iter().find(|(b, _)| *b == bench).unwrap().1[k];
            let imp = match (row.times.static_, row.times.lp) {
                (Some(s), Some(l)) => Some(improvement_pct(s, l)),
                _ => None,
            };
            cells.push(fmt_opt_pct(imp));
        }
        table.row(cells);
    }
    println!("=== Figure 9: LP vs Static — potential improvement (%) ===");
    println!("{}", table.render());
    println!("{}", table.render_tsv("fig9"));
    println!(
        "note: '-' marks caps at which the benchmark could not be scheduled \
         (paper: \"Some benchmarks were not able to be scheduled at the lowest \
         average per-socket power constraint\")"
    );
}
