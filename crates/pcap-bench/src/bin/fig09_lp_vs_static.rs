//! **Figure 9** — potential speedup of LP-derived schedules vs. Static,
//! per benchmark, across average per-socket power constraints of 30–80 W.
//!
//! Paper shape: gains are largest at the lowest caps; BT peaks at ~75%;
//! CoMD stays small (2–13%); some benchmarks cannot be scheduled at the
//! lowest constraint.

use pcap_apps::Benchmark;
use pcap_bench::table::{fmt_opt_pct, Table};
use pcap_bench::{
    cached_sweep_exact, default_sweep_path, improvement_pct, ExperimentConfig, SWEEP_CAPS,
};
use pcap_machine::MachineSpec;

fn main() {
    let machine = MachineSpec::e5_2670();
    let cfg = ExperimentConfig::default();
    let sweep = cached_sweep_exact(&default_sweep_path(), &machine, &cfg, &SWEEP_CAPS);

    let mut table = Table::new(&["W/socket", "BT", "CoMD", "LULESH", "SP"]);
    for (k, &cap) in SWEEP_CAPS.iter().enumerate() {
        let mut cells = vec![format!("{cap:.0}")];
        for bench in [Benchmark::BtMz, Benchmark::CoMD, Benchmark::Lulesh, Benchmark::SpMz] {
            let row = &sweep.iter().find(|b| b.bench == bench).unwrap().rows[k];
            let imp = match (row.times.static_, row.times.lp) {
                (Some(s), Some(l)) => Some(improvement_pct(s, l)),
                _ => None,
            };
            cells.push(fmt_opt_pct(imp));
        }
        table.row(cells);
    }
    println!("=== Figure 9: LP vs Static — potential improvement (%) ===");
    println!("{}", table.render());
    println!("{}", table.render_tsv("fig9"));
    println!(
        "note: '-' marks caps at which the benchmark could not be scheduled \
         (paper: \"Some benchmarks were not able to be scheduled at the lowest \
         average per-socket power constraint\")"
    );

    // The exact piecewise-linear frontier: the parametric ramp reports every
    // cap where a window's optimal basis changes — the grid above samples
    // the frontier, these are its true kinks.
    println!();
    println!("exact frontier breakpoints (W/socket) from the parametric ramp:");
    for b in &sweep {
        let per_socket: Vec<String> =
            b.breakpoints.iter().map(|&w| format!("{:.3}", w / cfg.ranks as f64)).collect();
        if per_socket.is_empty() {
            println!("  {:<8} (none in swept range, or per-cap mode)", b.bench.name());
        } else if b.breakpoints_total > per_socket.len() {
            println!(
                "  {:<8} {} kinks (showing {} evenly sampled): {}",
                b.bench.name(),
                b.breakpoints_total,
                per_socket.len(),
                per_socket.join(", ")
            );
        } else {
            println!(
                "  {:<8} {} kinks: {}",
                b.bench.name(),
                per_socket.len(),
                per_socket.join(", ")
            );
        }
    }

    // Solver telemetry for the LP bounds behind this figure, aggregated
    // over every (benchmark, cap) cell of the sweep.
    let mut total = pcap_lp::SolveStats::default();
    for b in &sweep {
        for r in &b.rows {
            if r.lp_stats.solves > 0 {
                total.absorb(&r.lp_stats);
            }
        }
    }
    if total.solves > 0 {
        let fill = if total.basis_nnz > 0 {
            total.factor_nnz as f64 / total.basis_nnz as f64
        } else {
            0.0
        };
        println!(
            "solver telemetry: {} window solves, {} simplex iterations \
             ({} in phase 1), {} refactorizations, {:.3} s total solve wall \
             time, warm starts used: {}, warm rejected: {}, \
             basis nnz {} -> factor nnz {} (avg fill {:.2}x)",
            total.solves,
            total.iterations,
            total.phase1_iterations,
            total.refactorizations,
            total.wall_time_s,
            if total.warm_started { "yes" } else { "no" },
            total.warm_rejected,
            total.basis_nnz,
            total.factor_nnz,
            fill,
        );
        println!(
            "ramp telemetry: {} breakpoints crossed, {} ramp pivots, \
             {} caps answered by interpolation, {} interval skips, \
             {} solves priced with Dantzig",
            total.ramp_breakpoints,
            total.ramp_steps,
            total.caps_interpolated,
            total.basis_interval_skips,
            total.pricing_dantzig,
        );
    }
}
