//! **Table 3** — task characteristics for a single iteration of LULESH at
//! 1600 W total (average of 50 W per processor socket), long-running
//! (≥ 1 s) tasks only.
//!
//! Paper values (32 processors at 1350 W / 50 W each):
//!
//! | method    | median time | power σ | threads | median freq (of max) |
//! |-----------|------------:|--------:|--------:|---------------------:|
//! | Static    | 4.889 s     | 0.009   | 8       | 0.8834               |
//! | Conductor | 3.614 s     | 0.118   | 5       | 0.9942               |
//! | LP        | 3.611 s     | 0.125   | 4–5     | 1.0                  |
//!
//! The signature to reproduce: Static uses all 8 throttled threads; the LP
//! and Conductor pick ~5 threads at higher clocks and spread power
//! non-uniformly (larger σ), finishing ~25% faster.

use pcap_apps::{lulesh, AppParams};
use pcap_bench::table::Table;
use pcap_core::{solve_decomposed, FixedLpOptions, TaskFrontiers};
use pcap_dag::{TaskGraph, VertexKind};
use pcap_machine::MachineSpec;
use pcap_sched::{Conductor, ConductorOptions, StaticPolicy};
use pcap_sim::{SimOptions, SimResult, Simulator};

/// The time window of one mid-run iteration: between the `k`-th and
/// `k+1`-th Pcontrol vertices.
fn iteration_window(graph: &TaskGraph, vertex_times: &[f64], k: u32) -> (f64, f64) {
    let mut times: Vec<f64> = graph
        .topo_order()
        .iter()
        .filter(|&&v| graph.vertex(v).kind == VertexKind::Pcontrol)
        .map(|&v| vertex_times[v.index()])
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (times[k as usize], times[k as usize + 1])
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

fn std_dev(v: &[f64]) -> f64 {
    let mean = v.iter().sum::<f64>() / v.len() as f64;
    (v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / v.len() as f64).sqrt()
}

struct RowStats {
    med_time: f64,
    power_sigma: f64,
    threads: String,
    med_freq: f64,
}

fn sim_stats(graph: &TaskGraph, res: &SimResult, k: u32, min_dur: f64, fmax: f64) -> RowStats {
    let (t0, t1) = iteration_window(graph, &res.vertex_times, k);
    let recs: Vec<_> = res
        .tasks
        .iter()
        .filter(|t| t.start_s >= t0 && t.start_s < t1 && t.duration() >= min_dur)
        .collect();
    assert!(!recs.is_empty(), "no long tasks in the chosen iteration");
    let times: Vec<f64> = recs.iter().map(|t| t.duration()).collect();
    let powers: Vec<f64> = recs.iter().map(|t| t.avg_power_w).collect();
    let freqs: Vec<f64> = recs.iter().map(|t| t.avg_freq_ghz / fmax).collect();
    let mut threads: Vec<u32> = recs.iter().map(|t| t.threads).collect();
    threads.sort_unstable();
    threads.dedup();
    let tstr = if threads.len() == 1 {
        threads[0].to_string()
    } else {
        format!("{}-{}", threads[0], threads.last().unwrap())
    };
    RowStats {
        med_time: median(times),
        power_sigma: std_dev(&powers),
        threads: tstr,
        med_freq: median(freqs),
    }
}

fn main() {
    let machine = MachineSpec::e5_2670();
    let ranks = 32u32;
    let per_socket = 50.0;
    let job_cap = per_socket * ranks as f64;
    let min_dur = 1.0;
    let probe_iteration = 6; // a mid-run iteration, past warm-up and realloc
    let fmax = machine.f_max_ghz();

    let cfg = AppParams { ranks, iterations: 10, seed: 0x5C15 };
    let g = lulesh::generate(&cfg);
    let frontiers = TaskFrontiers::build(&g, &machine);

    // Static.
    let mut stat = StaticPolicy::uniform(job_cap, ranks, machine.max_threads);
    let rs = Simulator::new(&g, &machine, SimOptions::default()).run(&mut stat).unwrap();
    let s_static = sim_stats(&g, &rs, probe_iteration, min_dur, fmax);

    // Conductor.
    let mut cond = Conductor::new(
        job_cap,
        ranks,
        machine.max_threads,
        frontiers.clone(),
        ConductorOptions::default(),
    );
    let rc = Simulator::new(&g, &machine, SimOptions::default()).run(&mut cond).unwrap();
    let s_cond = sim_stats(&g, &rc, probe_iteration, min_dur, fmax);

    // LP: statistics straight from the schedule.
    let sched = solve_decomposed(&g, &machine, &frontiers, job_cap, &FixedLpOptions::default())
        .expect("LULESH schedulable at 50 W/socket");
    let (t0, t1) = iteration_window(&g, &sched.vertex_times, probe_iteration);
    let mut times = vec![];
    let mut powers = vec![];
    let mut freqs = vec![];
    let mut threads: Vec<u32> = vec![];
    for (id, e) in g.iter_edges() {
        if !e.is_task() {
            continue;
        }
        let start = sched.vertex_times[e.src.index()];
        let Some(c) = sched.choice(id) else { continue };
        if start < t0 || start >= t1 || c.duration_s < min_dur {
            continue;
        }
        times.push(c.duration_s);
        powers.push(c.power_w);
        let frontier = frontiers.get(id).unwrap();
        let mut f_avg = 0.0;
        for &(idx, frac) in &c.mix {
            let pt = &frontier.points()[idx];
            f_avg += frac * pt.config.ghz(&machine);
            // Count a thread count as "used" only when it carries a
            // meaningful share of the task (matching how the paper reports
            // the LP's 4-5 threads).
            if frac > 0.25 {
                threads.push(pt.config.threads as u32);
            }
        }
        freqs.push(f_avg / fmax);
    }
    threads.sort_unstable();
    threads.dedup();
    let s_lp = RowStats {
        med_time: median(times),
        power_sigma: std_dev(&powers),
        threads: if threads.len() == 1 {
            threads[0].to_string()
        } else {
            format!("{}-{}", threads[0], threads.last().unwrap())
        },
        med_freq: median(freqs),
    };

    let mut table =
        Table::new(&["method", "median_time_s", "power_sigma_w", "threads", "median_freq"]);
    for (name, s) in [("Static", &s_static), ("Conductor", &s_cond), ("LP", &s_lp)] {
        table.row(vec![
            name.into(),
            format!("{:.3}", s.med_time),
            format!("{:.3}", s.power_sigma),
            s.threads.clone(),
            format!("{:.4}", s.med_freq),
        ]);
    }
    println!("=== Table 3: LULESH single-iteration task characteristics @ {} W total ===", job_cap);
    println!("{}", table.render());
    println!("{}", table.render_tsv("tab3"));
    println!(
        "paper reference: Static 4.889 s / σ 0.009 / 8 threads / 0.8834; \
         Conductor 3.614 s / σ 0.118 / 5 / 0.9942; LP 3.611 s / σ 0.125 / 4-5 / 1.0"
    );

    // Shape assertions.
    assert!(s_static.med_time > s_lp.med_time, "Static must be slower than the LP");
    assert!(s_static.power_sigma < s_lp.power_sigma, "LP spreads power non-uniformly");
    assert_eq!(s_static.threads, "8", "Static is pinned to all hardware threads");
    assert!(s_lp.med_freq > s_static.med_freq, "LP runs fewer threads at higher clocks");
}
