//! Criterion benches for the simplex/branch-and-bound substrate: solve-time
//! scaling on structured LPs of growing size, small MIPs, and the
//! sparse-vs-dense linear-algebra engine comparison on paper-shaped
//! workloads (the figure-9 CoMD cap sweep and an iteration-decomposed
//! LULESH instance).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcap_apps::{comd, lulesh, AppParams};
use pcap_core::{solve_decomposed, solve_sweep, FixedLpOptions, SweepOptions, TaskFrontiers};
use pcap_lp::{
    solve, solve_mip, Bound, BranchOptions, LinExpr, LinearAlgebra, Problem, Sense, SolverOptions,
    VarId,
};
use pcap_machine::MachineSpec;

/// A transportation LP with `n x n` variables and `2n` equality rows —
/// similar row/column density to one scheduling window.
fn transport(n: usize) -> Problem {
    let mut p = Problem::new(Sense::Minimize);
    let mut xs = Vec::with_capacity(n * n);
    for i in 0..n {
        for j in 0..n {
            let c = ((i * 7 + j * 3) % 11) as f64 + 1.0;
            xs.push(p.add_var(0.0, f64::INFINITY, c));
        }
    }
    for i in 0..n {
        let e = LinExpr::from((0..n).map(|j| (xs[i * n + j], 1.0)).collect::<Vec<_>>());
        p.add_constraint(e, Bound::Equal(10.0 + (i % 3) as f64));
    }
    for j in 0..n {
        let e = LinExpr::from((0..n).map(|i| (xs[i * n + j], 1.0)).collect::<Vec<_>>());
        p.add_constraint(e, Bound::Equal(10.0 + (j % 3) as f64));
    }
    p
}

fn knapsack(n: usize) -> Problem {
    let mut p = Problem::new(Sense::Maximize);
    let mut e = LinExpr::new();
    let mut vars: Vec<VarId> = vec![];
    for k in 0..n {
        let v = p.add_bin_var(1.0 + (k % 7) as f64 * 0.37);
        e.add(v, 1.0 + (k % 5) as f64);
        vars.push(v);
    }
    p.add_constraint(e, Bound::Upper(n as f64 * 0.8));
    p
}

fn bench_simplex_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex/transport");
    for n in [8usize, 16, 32] {
        let p = transport(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &p, |b, p| {
            b.iter(|| solve(p).unwrap().objective)
        });
    }
    group.finish();
}

/// Transport LPs under each engine: isolates the linear-algebra cost from
/// the scheduling-specific structure of the benches below.
fn bench_engine_transport(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/transport32");
    let p = transport(32);
    for (name, la) in [("sparse", LinearAlgebra::Sparse), ("dense", LinearAlgebra::Dense)] {
        let opts = SolverOptions { linear_algebra: la, ..Default::default() };
        group.bench_with_input(BenchmarkId::from_parameter(name), &p, |b, p| {
            b.iter(|| pcap_lp::solve_with(p, &opts).unwrap().objective)
        });
    }
    group.finish();
}

/// The figure-9 workload: a warm-started 16-cap CoMD sweep (per-socket caps
/// 25–100 W in 5 W steps) at the experiment's 32-rank scale, once per
/// engine. This is the acceptance benchmark for the sparse engine: LP solve
/// time across the sweep, sparse vs dense.
fn bench_engine_fig09_sweep(c: &mut Criterion) {
    let machine = MachineSpec::e5_2670();
    let graph = comd::generate(&AppParams { ranks: 32, iterations: 3, seed: 0x5C15 });
    let frontiers = TaskFrontiers::build(&graph, &machine);
    let caps: Vec<f64> = (0..16).map(|k| (25.0 + 5.0 * k as f64) * 32.0).collect();
    let mut group = c.benchmark_group("engine/fig09-comd-sweep16");
    group.sample_size(10);
    for (name, la) in [("sparse", LinearAlgebra::Sparse), ("dense", LinearAlgebra::Dense)] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let mut opts = SweepOptions { workers: 1, warm_start: true, ..Default::default() };
                opts.fixed.lp.linear_algebra = la;
                solve_sweep(&graph, &machine, &frontiers, &caps, &opts)
            })
        });
    }
    group.finish();
}

/// An iteration-decomposed LULESH instance: the whole-run LP split into
/// per-iteration windows at the global synchronization points, solved
/// window-by-window at a mid-range cap, once per engine.
fn bench_engine_lulesh_decomposed(c: &mut Criterion) {
    let machine = MachineSpec::e5_2670();
    let graph = lulesh::generate(&AppParams { ranks: 4, iterations: 4, seed: 0x5C15 });
    let frontiers = TaskFrontiers::build(&graph, &machine);
    let cap_w = 50.0 * 4.0;
    let mut group = c.benchmark_group("engine/lulesh-decomposed");
    group.sample_size(10);
    for (name, la) in [("sparse", LinearAlgebra::Sparse), ("dense", LinearAlgebra::Dense)] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let mut opts = FixedLpOptions::default();
                opts.lp.linear_algebra = la;
                solve_decomposed(&graph, &machine, &frontiers, cap_w, &opts).unwrap().makespan_s
            })
        });
    }
    group.finish();
}

fn bench_branch_and_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("mip/knapsack");
    for n in [10usize, 16] {
        let p = knapsack(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &p, |b, p| {
            b.iter(|| solve_mip(p, &BranchOptions::default()).unwrap().objective)
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_simplex_scaling,
    bench_branch_and_bound,
    bench_engine_transport,
    bench_engine_fig09_sweep,
    bench_engine_lulesh_decomposed
);
criterion_main!(benches);
