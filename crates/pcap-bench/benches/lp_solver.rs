//! Criterion benches for the simplex/branch-and-bound substrate: solve-time
//! scaling on structured LPs of growing size, and small MIPs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcap_lp::{solve, solve_mip, Bound, BranchOptions, LinExpr, Problem, Sense, VarId};

/// A transportation LP with `n x n` variables and `2n` equality rows —
/// similar row/column density to one scheduling window.
fn transport(n: usize) -> Problem {
    let mut p = Problem::new(Sense::Minimize);
    let mut xs = Vec::with_capacity(n * n);
    for i in 0..n {
        for j in 0..n {
            let c = ((i * 7 + j * 3) % 11) as f64 + 1.0;
            xs.push(p.add_var(0.0, f64::INFINITY, c));
        }
    }
    for i in 0..n {
        let e = LinExpr::from((0..n).map(|j| (xs[i * n + j], 1.0)).collect::<Vec<_>>());
        p.add_constraint(e, Bound::Equal(10.0 + (i % 3) as f64));
    }
    for j in 0..n {
        let e = LinExpr::from((0..n).map(|i| (xs[i * n + j], 1.0)).collect::<Vec<_>>());
        p.add_constraint(e, Bound::Equal(10.0 + (j % 3) as f64));
    }
    p
}

fn knapsack(n: usize) -> Problem {
    let mut p = Problem::new(Sense::Maximize);
    let mut e = LinExpr::new();
    let mut vars: Vec<VarId> = vec![];
    for k in 0..n {
        let v = p.add_bin_var(1.0 + (k % 7) as f64 * 0.37);
        e.add(v, 1.0 + (k % 5) as f64);
        vars.push(v);
    }
    p.add_constraint(e, Bound::Upper(n as f64 * 0.8));
    p
}

fn bench_simplex_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex/transport");
    for n in [8usize, 16, 32] {
        let p = transport(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &p, |b, p| {
            b.iter(|| solve(p).unwrap().objective)
        });
    }
    group.finish();
}

fn bench_branch_and_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("mip/knapsack");
    for n in [10usize, 16] {
        let p = knapsack(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &p, |b, p| {
            b.iter(|| solve_mip(p, &BranchOptions::default()).unwrap().objective)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simplex_scaling, bench_branch_and_bound);
criterion_main!(benches);
