//! Criterion benches for the discrete-event simulator: event throughput
//! under the three runtime policies and under schedule replay.

use criterion::{criterion_group, criterion_main, Criterion};
use pcap_apps::{AppParams, Benchmark};
use pcap_core::{replay_schedule, solve_decomposed, FixedLpOptions, ReplayMode, TaskFrontiers};
use pcap_machine::MachineSpec;
use pcap_sched::{Conductor, ConductorOptions, StaticPolicy};
use pcap_sim::{SimOptions, Simulator};

fn bench_policies(c: &mut Criterion) {
    let machine = MachineSpec::e5_2670();
    let g = Benchmark::Lulesh.generate(&AppParams { ranks: 16, iterations: 5, seed: 1 });
    let frontiers = TaskFrontiers::build(&g, &machine);
    let cap = 16.0 * 50.0;
    let mut group = c.benchmark_group("simulator");
    group.sample_size(20);
    group.bench_function("static_lulesh_16r5i", |b| {
        b.iter(|| {
            let mut p = StaticPolicy::uniform(cap, 16, machine.max_threads);
            Simulator::new(&g, &machine, SimOptions::default()).run(&mut p).unwrap().makespan_s
        })
    });
    group.bench_function("conductor_lulesh_16r5i", |b| {
        b.iter(|| {
            let mut p = Conductor::new(
                cap,
                16,
                machine.max_threads,
                frontiers.clone(),
                ConductorOptions::default(),
            );
            Simulator::new(&g, &machine, SimOptions::default()).run(&mut p).unwrap().makespan_s
        })
    });
    group.finish();
}

fn bench_replay(c: &mut Criterion) {
    let machine = MachineSpec::e5_2670();
    let g = Benchmark::CoMD.generate(&AppParams { ranks: 16, iterations: 5, seed: 1 });
    let frontiers = TaskFrontiers::build(&g, &machine);
    let cap = 16.0 * 45.0;
    let sched =
        solve_decomposed(&g, &machine, &frontiers, cap, &FixedLpOptions::default()).unwrap();
    let mut group = c.benchmark_group("simulator");
    group.sample_size(20);
    group.bench_function("replay_comd_16r5i", |b| {
        b.iter(|| {
            replay_schedule(
                &g,
                &machine,
                &frontiers,
                &sched,
                SimOptions::default(),
                ReplayMode::Segments,
            )
            .unwrap()
            .makespan_s
        })
    });
    group.finish();
}

criterion_group!(benches, bench_policies, bench_replay);
criterion_main!(benches);
