//! Criterion benches for the scheduling formulations themselves: one
//! fixed-order LP window per benchmark iteration, the whole-run decomposed
//! solve, and the flow ILP on the exchange micro-benchmark. These are the
//! ablations DESIGN.md calls out: decomposed vs whole-graph solving and
//! LP vs ILP cost.

use criterion::{criterion_group, criterion_main, Criterion};
use pcap_apps::exchange::{generate as gen_exchange, ExchangeParams};
use pcap_apps::{AppParams, Benchmark};
use pcap_core::{
    solve_decomposed, solve_fixed_order, solve_flow, FixedLpOptions, FlowOptions, TaskFrontiers,
};
use pcap_machine::MachineSpec;

fn bench_fixed_lp_per_benchmark(c: &mut Criterion) {
    let machine = MachineSpec::e5_2670();
    let mut group = c.benchmark_group("fixed_lp/one_iteration");
    group.sample_size(10);
    for bench in Benchmark::ALL {
        let g = bench.generate(&AppParams { ranks: 8, iterations: 1, seed: 1 });
        let frontiers = TaskFrontiers::build(&g, &machine);
        group.bench_function(bench.name(), |b| {
            b.iter(|| {
                solve_decomposed(&g, &machine, &frontiers, 8.0 * 50.0, &FixedLpOptions::default())
                    .unwrap()
                    .makespan_s
            })
        });
    }
    group.finish();
}

fn bench_decomposed_vs_whole(c: &mut Criterion) {
    let machine = MachineSpec::e5_2670();
    let g = Benchmark::CoMD.generate(&AppParams { ranks: 8, iterations: 4, seed: 1 });
    let frontiers = TaskFrontiers::build(&g, &machine);
    let cap = 8.0 * 50.0;
    let mut group = c.benchmark_group("fixed_lp/decomposition_ablation");
    group.sample_size(10);
    group.bench_function("whole_graph", |b| {
        b.iter(|| {
            solve_fixed_order(&g, &machine, &frontiers, cap, &FixedLpOptions::default())
                .unwrap()
                .makespan_s
        })
    });
    group.bench_function("decomposed", |b| {
        b.iter(|| {
            solve_decomposed(&g, &machine, &frontiers, cap, &FixedLpOptions::default())
                .unwrap()
                .makespan_s
        })
    });
    group.finish();
}

fn bench_flow_ilp(c: &mut Criterion) {
    let machine = MachineSpec::e5_2670();
    let g = gen_exchange(&ExchangeParams::default());
    let frontiers = TaskFrontiers::build(&g, &machine);
    let mut group = c.benchmark_group("flow_ilp/exchange");
    group.sample_size(10);
    group.bench_function("solve_75w", |b| {
        b.iter(|| {
            solve_flow(&g, &machine, &frontiers, 75.0, &FlowOptions::default()).unwrap().makespan_s
        })
    });
    group.finish();
}

fn bench_frontier_build(c: &mut Criterion) {
    let machine = MachineSpec::e5_2670();
    let g = Benchmark::Lulesh.generate(&AppParams { ranks: 8, iterations: 2, seed: 1 });
    let mut group = c.benchmark_group("profiling");
    group.sample_size(10);
    group.bench_function("task_frontiers_lulesh_2it", |b| {
        b.iter(|| TaskFrontiers::build(&g, &machine).iter().count())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fixed_lp_per_benchmark,
    bench_decomposed_vs_whole,
    bench_flow_ilp,
    bench_frontier_build
);
criterion_main!(benches);
