//! Criterion benches for the power-cap sweep subsystem: the parametric-ramp
//! and warm-started per-cap [`pcap_core::solve_sweep`] engines against the
//! naive sequential cold-start loop they replace (one `solve_decomposed`
//! per cap, each rebuilding every window LP from scratch). All variants are
//! required to return bitwise-identical makespans (asserted in the
//! pcap-core and pcap-bench test suites) — these benches measure the
//! speedups.

use criterion::{criterion_group, criterion_main, Criterion};
use pcap_apps::{AppParams, Benchmark};
use pcap_core::{
    solve_decomposed, solve_sweep, FixedLpOptions, SweepMode, SweepOptions, TaskFrontiers,
};
use pcap_machine::MachineSpec;

/// The shared fixture: CoMD at a mid-size configuration with the paper's
/// 30–80 W/socket range sampled at 16 caps (the dense grid a smooth
/// figure curve needs — and the regime warm starts are built for: closely
/// spaced caps mean adjacent optimal bases differ by few pivots), job-level
/// (ranks × per-socket).
fn fixture() -> (pcap_dag::TaskGraph, MachineSpec, Vec<f64>) {
    let ranks = 8u32;
    let g = Benchmark::CoMD.generate(&AppParams { ranks, iterations: 6, seed: 0x5C15 });
    let machine = MachineSpec::e5_2670();
    let caps: Vec<f64> = (0..16).map(|k| (30.0 + 50.0 * k as f64 / 15.0) * ranks as f64).collect();
    (g, machine, caps)
}

fn bench_sweep_vs_cold_loop(c: &mut Criterion) {
    let (g, machine, caps) = fixture();
    let frontiers = TaskFrontiers::build(&g, &machine);
    let mut group = c.benchmark_group("sweep/comd_16caps");
    group.sample_size(10);

    group.bench_function("sequential_cold_loop", |b| {
        b.iter(|| {
            caps.iter()
                .filter_map(|&cap| {
                    solve_decomposed(&g, &machine, &frontiers, cap, &FixedLpOptions::default())
                        .ok()
                        .map(|s| s.makespan_s)
                })
                .sum::<f64>()
        })
    });
    // Pinned to per-cap mode: these two measure warm-start machinery (one
    // dual-simplex solve per cap), the differential baseline for the ramp.
    group.bench_function("warm_parallel_sweep", |b| {
        b.iter(|| {
            let opts = SweepOptions { mode: SweepMode::PerCap, ..Default::default() };
            solve_sweep(&g, &machine, &frontiers, &caps, &opts)
                .iter()
                .filter_map(|p| p.makespan_s())
                .sum::<f64>()
        })
    });
    // Isolates the warm-start contribution from the thread-level parallelism:
    // same single worker as the cold loop, bases chained across caps.
    group.bench_function("warm_sequential_sweep", |b| {
        b.iter(|| {
            let opts = SweepOptions { workers: 1, mode: SweepMode::PerCap, ..Default::default() };
            solve_sweep(&g, &machine, &frontiers, &caps, &opts)
                .iter()
                .filter_map(|p| p.makespan_s())
                .sum::<f64>()
        })
    });
    // The parametric ramp: one basis walk over the whole grid per window,
    // grid caps answered at breakpoint-crossing cost instead of solve cost.
    group.bench_function("ramp_sequential_sweep", |b| {
        b.iter(|| {
            let opts = SweepOptions { workers: 1, ..Default::default() };
            solve_sweep(&g, &machine, &frontiers, &caps, &opts)
                .iter()
                .filter_map(|p| p.makespan_s())
                .sum::<f64>()
        })
    });
    group.bench_function("ramp_parallel_sweep", |b| {
        b.iter(|| {
            solve_sweep(&g, &machine, &frontiers, &caps, &SweepOptions::default())
                .iter()
                .filter_map(|p| p.makespan_s())
                .sum::<f64>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sweep_vs_cold_loop);
criterion_main!(benches);
