//! Criterion benches for the profiling step: configuration-space evaluation
//! and convex Pareto frontier construction (the per-task offline cost the
//! paper's tracing/profiling phase pays).

use criterion::{criterion_group, criterion_main, Criterion};
use pcap_machine::{convex_frontier, pareto_filter, MachineSpec, TaskModel};

fn bench_config_space(c: &mut Criterion) {
    let machine = MachineSpec::e5_2670();
    let task = TaskModel::mixed(5.0, 0.4);
    c.bench_function("frontier/config_space_120pts", |b| {
        b.iter(|| task.config_space(&machine).len())
    });
}

fn bench_pareto_and_hull(c: &mut Criterion) {
    let machine = MachineSpec::e5_2670();
    let task = TaskModel::mixed(5.0, 0.4);
    let cloud = task.config_space(&machine);
    c.bench_function("frontier/pareto_filter", |b| b.iter(|| pareto_filter(&cloud).len()));
    c.bench_function("frontier/convex_hull", |b| b.iter(|| convex_frontier(&cloud).len()));
}

fn bench_frontier_queries(c: &mut Criterion) {
    let machine = MachineSpec::e5_2670();
    let task = TaskModel::mixed(5.0, 0.4);
    let frontier = convex_frontier(&task.config_space(&machine));
    c.bench_function("frontier/time_at_power", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            let mut p = frontier.min_power().power_w;
            while p < frontier.max_power().power_w {
                acc += frontier.time_at_power(p).unwrap();
                p += 0.5;
            }
            acc
        })
    });
}

criterion_group!(benches, bench_config_space, bench_pareto_and_hull, bench_frontier_queries);
criterion_main!(benches);
