//! # pcap-sched — runtime power-allocation algorithms
//!
//! The two contemporary algorithms the paper grades against its LP bound
//! (§4), plus an ablation:
//!
//! * [`StaticPolicy`] — fixed, uniform socket caps with all hardware
//!   threads; RAPL firmware does whatever it can under each cap. The
//!   de-facto production scheme (§4.1) and the baseline of every figure.
//! * [`Conductor`] — the adaptive runtime of Marathe et al. (ISC'15),
//!   §4.2: per-task configuration selection from measured Pareto
//!   frontiers, Adagio-style slowing of off-critical-path tasks, and
//!   periodic power reallocation between ranks driven by (noisy, stale)
//!   measurements.
//! * [`ConfigOnly`] — configuration selection under uniform caps, without
//!   reallocation (the paper's observation that selection alone leaves
//!   performance on the table).
//!
//! All three implement [`pcap_sim::Policy`] and run unmodified through the
//! discrete-event simulator.

pub mod conductor;
pub mod statics;

pub use conductor::{Conductor, ConductorOptions};
pub use statics::{ConfigOnly, StaticPolicy};
