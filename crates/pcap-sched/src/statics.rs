//! Static uniform capping and configuration-selection-only policies.

use pcap_core::TaskFrontiers;
use pcap_dag::EdgeId;
use pcap_sim::{Decision, Policy};

/// §4.1 — Static: the job cap divided equally across sockets, all hardware
/// threads, RAPL picking the frequency. "This method has been used
/// effectively in production clusters within the U.S. Department of Energy."
#[derive(Debug, Clone, Copy)]
pub struct StaticPolicy {
    /// Per-socket cap (job cap / number of sockets).
    pub socket_cap_w: f64,
    /// Hardware thread count (RAPL cannot change concurrency, so Static
    /// always uses all cores — the paper fixes 8).
    pub threads: u32,
}

impl StaticPolicy {
    /// Splits a job-level cap uniformly over `ranks` sockets.
    pub fn uniform(job_cap_w: f64, ranks: u32, threads: u32) -> Self {
        Self { socket_cap_w: job_cap_w / ranks as f64, threads }
    }
}

impl Policy for StaticPolicy {
    fn choose(&mut self, _task: EdgeId, _rank: u32, _now: f64) -> Decision {
        Decision::Cap { cap_w: self.socket_cap_w, threads: self.threads }
    }
}

/// Configuration selection under uniform caps, no reallocation: for every
/// task, pick the Pareto-frontier configuration that is fastest within the
/// (fixed, uniform) socket budget. This is Conductor's first component in
/// isolation — the ablation the paper describes in §6: "If only the
/// configuration selection is performed ... lower performance due to the
/// use of uniform power allocation."
#[derive(Debug, Clone)]
pub struct ConfigOnly {
    /// Per-socket cap.
    pub socket_cap_w: f64,
    frontiers: TaskFrontiers,
    fallback_threads: u32,
}

impl ConfigOnly {
    /// Creates the policy from profiled frontiers.
    pub fn new(
        job_cap_w: f64,
        ranks: u32,
        frontiers: TaskFrontiers,
        fallback_threads: u32,
    ) -> Self {
        Self { socket_cap_w: job_cap_w / ranks as f64, frontiers, fallback_threads }
    }
}

impl Policy for ConfigOnly {
    fn choose(&mut self, task: EdgeId, _rank: u32, _now: f64) -> Decision {
        let threads = self
            .frontiers
            .get(task)
            .and_then(|f| {
                // Fastest frontier point whose power fits the budget.
                f.points()
                    .iter()
                    .rev()
                    .find(|p| p.power_w <= self.socket_cap_w)
                    .or_else(|| Some(f.min_power()))
                    .map(|p| p.config.threads as u32)
            })
            .unwrap_or(self.fallback_threads);
        Decision::Cap { cap_w: self.socket_cap_w, threads }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcap_apps::{lulesh, AppParams};
    use pcap_machine::MachineSpec;
    use pcap_sim::{SimOptions, Simulator};

    #[test]
    fn static_divides_cap_uniformly() {
        let s = StaticPolicy::uniform(320.0, 8, 8);
        assert_eq!(s.socket_cap_w, 40.0);
    }

    #[test]
    fn config_only_beats_static_on_contended_workloads() {
        // LULESH-like tasks have a thread sweet spot; choosing threads per
        // task must not lose to blindly using 8.
        let m = MachineSpec::e5_2670();
        let p = AppParams { ranks: 4, iterations: 3, seed: 5 };
        let g = lulesh::generate(&p);
        let cap = 4.0 * 45.0;
        let fr = TaskFrontiers::build(&g, &m);

        let sim = Simulator::new(&g, &m, SimOptions::ideal());
        let st = sim.run(&mut StaticPolicy::uniform(cap, 4, 8)).unwrap();
        let co = sim.run(&mut ConfigOnly::new(cap, 4, fr, 8)).unwrap();
        assert!(
            co.makespan_s <= st.makespan_s * 1.001,
            "config-only {} vs static {}",
            co.makespan_s,
            st.makespan_s
        );
        // Both respect the job cap.
        assert!(st.respects_cap(cap));
        assert!(co.respects_cap(cap));
    }
}
