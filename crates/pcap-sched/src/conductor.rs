//! Conductor — the adaptive power-allocation runtime (paper §4.2).
//!
//! Conductor couples two mechanisms on top of per-socket RAPL caps:
//!
//! 1. **Configuration selection.** During a short exploration phase each
//!    rank tries different thread counts (the paper distributes the
//!    configuration space across ranks to amortize exploration); afterwards
//!    every task runs at the Pareto-frontier configuration that is fastest
//!    within its socket's current power budget — the trade RAPL firmware
//!    alone cannot make, because firmware cannot change thread counts.
//! 2. **Power reallocation.** Adagio-style slack reclamation slows tasks on
//!    ranks that finished early last iteration (choosing cheaper frontier
//!    points that still fit the measured slack), and every few
//!    `MPI_Pcontrol` periods the per-rank budgets are re-divided: ranks that
//!    measured below their budget are trimmed to measured usage plus
//!    headroom, and the recovered watts go to the ranks with the longest
//!    busy time (the estimated critical path).
//!
//! Both mechanisms act on *noisy, stale* measurements delivered by the
//! simulator — which is exactly why Conductor trails the LP bound: budget
//! thrashing induces load imbalance (paper §6: "thrashing in the per-rank
//! power allocation"), and on well-balanced applications (SP-MZ) the
//! misidentified critical path plus reallocation overhead make it *slower*
//! than Static.

use pcap_core::TaskFrontiers;
use pcap_dag::EdgeId;
use pcap_machine::{convex_frontier, ConfigPoint};
use pcap_sim::{Decision, Observation, Policy, SyncInfo};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tunables for [`Conductor`]. Defaults follow the paper's setup.
#[derive(Debug, Clone)]
pub struct ConductorOptions {
    /// Exploration iterations before steady-state behaviour (the paper
    /// discards the first three iterations of every run).
    pub warmup_iterations: u32,
    /// Reallocate budgets every this many `MPI_Pcontrol` periods (the paper
    /// reallocates "after every 5-10 MPI_Pcontrol calls").
    pub realloc_period: u32,
    /// Multiplier on measured usage when trimming a rank's budget.
    pub headroom: f64,
    /// Budget floor per socket in watts (a socket must stay operable).
    pub min_socket_w: f64,
    /// Fraction of ranks (by measured busy time) treated as critical when
    /// redistributing recovered power.
    pub critical_fraction: f64,
    /// Cap on the Adagio slack-stretch factor.
    pub max_stretch: f64,
    /// Safety factor applied to measured slack before stretching (guards
    /// against perturbing the critical path on noisy measurements).
    pub stretch_safety: f64,
    /// Multiplicative std-dev of the *profiling* noise: Conductor's
    /// Pareto frontiers come from measuring each configuration during the
    /// exploration phase (paper §4.2), so its view of each task's time and
    /// power is perturbed by this much. This is the channel through which
    /// Conductor misjudges configurations and the critical path; the
    /// `abl_noise` ablation sweeps it. The default of 0 models a profile
    /// converged by averaging (the paper amortizes exploration over many
    /// iterations).
    pub profile_noise_std: f64,
    /// Seed for the profiling-noise perturbation.
    pub profile_seed: u64,
}

impl Default for ConductorOptions {
    fn default() -> Self {
        Self {
            warmup_iterations: 3,
            realloc_period: 5,
            headroom: 1.04,
            min_socket_w: 16.0,
            critical_fraction: 0.25,
            max_stretch: 4.0,
            stretch_safety: 0.92,
            profile_noise_std: 0.0,
            profile_seed: 0xC0D,
        }
    }
}

/// The Conductor runtime as a simulator [`Policy`].
#[derive(Debug, Clone)]
pub struct Conductor {
    job_cap_w: f64,
    ranks: u32,
    frontiers: TaskFrontiers,
    opts: ConductorOptions,
    max_threads: u32,

    /// Current per-rank power budgets (sum equals the job cap).
    budgets: Vec<f64>,
    /// Busy seconds accumulated this iteration, per rank.
    iter_busy: Vec<f64>,
    /// Busy seconds of the previous iteration, per rank.
    last_iter_busy: Vec<f64>,
    /// Fastest-possible busy seconds (every task at its fastest frontier
    /// point) accumulated this iteration / for the previous iteration. The
    /// Adagio stretch is anchored to this pace so a stretched rank does not
    /// oscillate back to full speed.
    iter_fast: Vec<f64>,
    last_iter_fast: Vec<f64>,
    /// Energy (J) and busy time (s) accumulated this reallocation epoch.
    epoch_energy: Vec<f64>,
    epoch_busy: Vec<f64>,
    /// Power-weighted demand this epoch: what each rank's *desired*
    /// configurations would draw unthrottled (J and s).
    epoch_demand_j: Vec<f64>,
    epoch_demand_s: Vec<f64>,
    /// `MPI_Pcontrol` periods seen.
    pcontrols: u32,
    /// Time of the previous `MPI_Pcontrol` (for iteration wall time).
    last_pcontrol_s: f64,
    /// Wall-clock length of the previous iteration.
    last_wall_s: f64,
    /// Per-rank task counters (drive exploration variety).
    task_counter: Vec<u32>,
}

impl Conductor {
    /// Creates a Conductor instance for a job cap split over `ranks`
    /// sockets, with profiled task frontiers.
    pub fn new(
        job_cap_w: f64,
        ranks: u32,
        max_threads: u32,
        frontiers: TaskFrontiers,
        opts: ConductorOptions,
    ) -> Self {
        let n = ranks as usize;
        // Rebuild every frontier from noise-perturbed measurements: the
        // runtime acts on its *profiled* view of the machine, not on ground
        // truth.
        let frontiers = if opts.profile_noise_std > 0.0 {
            let mut rng = StdRng::seed_from_u64(opts.profile_seed);
            let std = opts.profile_noise_std;
            frontiers.map(|_, fr| {
                let noisy: Vec<ConfigPoint> = fr
                    .points()
                    .iter()
                    .map(|p| ConfigPoint {
                        config: p.config,
                        time_s: p.time_s * (1.0 + rng.gen_range(-std..=std)),
                        power_w: p.power_w * (1.0 + rng.gen_range(-std..=std)),
                    })
                    .collect();
                convex_frontier(&noisy)
            })
        } else {
            frontiers
        };
        Self {
            job_cap_w,
            ranks,
            frontiers,
            opts,
            max_threads,
            budgets: vec![job_cap_w / ranks as f64; n],
            iter_busy: vec![0.0; n],
            last_iter_busy: vec![0.0; n],
            iter_fast: vec![0.0; n],
            last_iter_fast: vec![0.0; n],
            epoch_energy: vec![0.0; n],
            epoch_busy: vec![0.0; n],
            epoch_demand_j: vec![0.0; n],
            epoch_demand_s: vec![0.0; n],
            pcontrols: 0,
            last_pcontrol_s: 0.0,
            last_wall_s: 0.0,
            task_counter: vec![0; n],
        }
    }

    /// Current budget of a rank (test/diagnostic hook).
    pub fn budget(&self, rank: u32) -> f64 {
        self.budgets[rank as usize]
    }

    fn in_warmup(&self) -> bool {
        self.pcontrols < self.opts.warmup_iterations
    }

    /// The Adagio stretch factor for `rank`: how much slower the rank may
    /// run while still fitting inside the *observed* iteration wall time.
    /// Using wall time (set by the truly critical rank) rather than
    /// relative busy times keeps the estimate anchored: a stretched rank
    /// fills its slack and converges, instead of everyone chasing an
    /// ever-growing maximum.
    fn stretch(&self, rank: usize) -> f64 {
        let wall = self.last_wall_s;
        let t_fast = self.last_iter_fast[rank];
        if wall <= 0.0 || t_fast <= 1e-9 {
            return 1.0;
        }
        (self.opts.stretch_safety * wall / t_fast).clamp(1.0, self.opts.max_stretch)
    }

    fn reallocate(&mut self) {
        let n = self.ranks as usize;
        // Size every rank's budget to its *demanded* power — what the
        // configurations it wanted (after Adagio stretching) would draw
        // unthrottled — plus headroom. Demand, unlike measured usage, does
        // not shrink when a rank is throttled, so budgets can recover and
        // reallocation does not ratchet the job downward.
        let mut base = vec![0.0; n];
        for (r, b) in base.iter_mut().enumerate() {
            let demand = if self.epoch_demand_s[r] > 1e-9 {
                self.epoch_demand_j[r] / self.epoch_demand_s[r]
            } else {
                self.budgets[r]
            };
            *b = (demand * self.opts.headroom).max(self.opts.min_socket_w);
        }
        let total: f64 = base.iter().sum();
        let surplus = self.job_cap_w - total;
        if surplus > 0.0 {
            // Give the recovered watts to the measured-critical ranks.
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| {
                self.last_iter_busy[b].partial_cmp(&self.last_iter_busy[a]).unwrap()
            });
            let ncrit = ((n as f64 * self.opts.critical_fraction).ceil() as usize).max(1);
            let bonus = surplus / ncrit as f64;
            for &r in order.iter().take(ncrit) {
                base[r] += bonus;
            }
        } else {
            // Demand exceeds the job cap: scale down proportionally, never
            // below the operability floor.
            let scale = self.job_cap_w / total;
            for b in &mut base {
                *b = (*b * scale).max(self.opts.min_socket_w);
            }
            // Floors may reintroduce a tiny overshoot; shave it off the
            // largest budgets to keep the invariant Σ budgets = cap.
            let mut excess = base.iter().sum::<f64>() - self.job_cap_w;
            while excess > 1e-9 {
                let (imax, _) =
                    base.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap();
                let take = excess.min(base[imax] - self.opts.min_socket_w);
                if take <= 0.0 {
                    break;
                }
                base[imax] -= take;
                excess -= take;
            }
        }
        self.budgets = base;
        self.epoch_energy.iter_mut().for_each(|e| *e = 0.0);
        self.epoch_busy.iter_mut().for_each(|e| *e = 0.0);
        self.epoch_demand_j.iter_mut().for_each(|e| *e = 0.0);
        self.epoch_demand_s.iter_mut().for_each(|e| *e = 0.0);
    }
}

impl Policy for Conductor {
    fn choose(&mut self, task: EdgeId, rank: u32, _now: f64) -> Decision {
        let r = rank as usize;
        self.task_counter[r] += 1;
        let budget = self.budgets[r];

        let Some(frontier) = self.frontiers.get(task) else {
            return Decision::Cap { cap_w: budget, threads: self.max_threads };
        };

        if self.in_warmup() {
            // Exploration: spread thread counts across ranks and tasks so
            // the profile covers the configuration space (paper §4.2).
            let t = 1 + ((rank + self.task_counter[r]) % self.max_threads);
            return Decision::Cap { cap_w: budget, threads: t };
        }

        // Adagio: allow off-critical ranks to slow down into their slack.
        self.iter_fast[r] += frontier.max_power().time_s;
        let stretch = self.stretch(r);
        let fastest_allowed = frontier.max_power().time_s * stretch;
        // Cheapest frontier point meeting the stretched deadline…
        let relaxed = frontier
            .points()
            .iter()
            .find(|p| p.time_s <= fastest_allowed)
            .unwrap_or_else(|| frontier.max_power());
        self.epoch_demand_j[r] += relaxed.power_w * relaxed.time_s;
        self.epoch_demand_s[r] += relaxed.time_s;
        // …but never exceeding the socket budget: otherwise the fastest
        // point that fits.
        let point = if relaxed.power_w <= budget {
            relaxed
        } else {
            frontier
                .points()
                .iter()
                .rev()
                .find(|p| p.power_w <= budget)
                .unwrap_or_else(|| frontier.min_power())
        };
        Decision::Cap {
            cap_w: budget.min(point.power_w * 1.02).max(self.opts.min_socket_w.min(budget)),
            threads: point.config.threads as u32,
        }
    }

    fn observe(&mut self, obs: &Observation) {
        let r = obs.rank as usize;
        self.iter_busy[r] += obs.duration_s;
        self.epoch_busy[r] += obs.duration_s;
        self.epoch_energy[r] += obs.duration_s * obs.power_w;
    }

    fn at_sync(&mut self, info: &SyncInfo) -> bool {
        if !info.is_pcontrol {
            return false;
        }
        self.pcontrols += 1;
        self.last_wall_s = info.time_s - self.last_pcontrol_s;
        self.last_pcontrol_s = info.time_s;
        std::mem::swap(&mut self.last_iter_busy, &mut self.iter_busy);
        self.iter_busy.iter_mut().for_each(|t| *t = 0.0);
        std::mem::swap(&mut self.last_iter_fast, &mut self.iter_fast);
        self.iter_fast.iter_mut().for_each(|t| *t = 0.0);
        if self.pcontrols == self.opts.warmup_iterations {
            // Exploration data is not representative of steady-state pace:
            // start the measured phase with no stretch, no stale wall, and
            // fresh epoch accumulators.
            self.last_iter_busy.iter_mut().for_each(|t| *t = 0.0);
            self.last_iter_fast.iter_mut().for_each(|t| *t = 0.0);
            self.last_wall_s = 0.0;
            self.epoch_energy.iter_mut().for_each(|e| *e = 0.0);
            self.epoch_busy.iter_mut().for_each(|e| *e = 0.0);
            self.epoch_demand_j.iter_mut().for_each(|e| *e = 0.0);
            self.epoch_demand_s.iter_mut().for_each(|e| *e = 0.0);
        }
        // Reallocate as soon as one steady-state iteration of demand data
        // exists, then every `realloc_period` Pcontrol periods.
        if self.pcontrols > self.opts.warmup_iterations
            && (self.pcontrols - self.opts.warmup_iterations - 1)
                .is_multiple_of(self.opts.realloc_period)
        {
            self.reallocate();
            return true; // charges the 566 µs reallocation overhead
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcap_apps::{comd, nasmz, AppParams};
    use pcap_machine::MachineSpec;
    use pcap_sim::{SimOptions, Simulator};

    fn run_conductor(
        g: &pcap_dag::TaskGraph,
        m: &MachineSpec,
        cap: f64,
        ranks: u32,
    ) -> (pcap_sim::SimResult, Conductor) {
        let fr = TaskFrontiers::build(g, m);
        let mut c = Conductor::new(cap, ranks, m.max_threads, fr, ConductorOptions::default());
        let res = Simulator::new(g, m, SimOptions::default()).run(&mut c).unwrap();
        (res, c)
    }

    #[test]
    fn budgets_always_sum_to_job_cap() {
        let m = MachineSpec::e5_2670();
        let ranks = 8;
        let g = nasmz::generate_bt(&AppParams { ranks, iterations: 12, seed: 3 });
        let cap = ranks as f64 * 40.0;
        let (res, c) = run_conductor(&g, &m, cap, ranks);
        let total: f64 = (0..ranks).map(|r| c.budget(r)).sum();
        assert!((total - cap).abs() < 1e-6, "budgets sum {total} vs cap {cap}");
        assert!(res.respects_cap(cap), "max power {}", res.power.max_power());
    }

    #[test]
    fn reallocation_favours_the_loaded_ranks() {
        // BT-MZ: rank weights grow with rank id, so after reallocation the
        // heaviest rank must hold a larger budget than the lightest.
        let m = MachineSpec::e5_2670();
        let ranks = 8;
        let g = nasmz::generate_bt(&AppParams { ranks, iterations: 14, seed: 3 });
        let cap = ranks as f64 * 35.0;
        let (_res, c) = run_conductor(&g, &m, cap, ranks);
        assert!(
            c.budget(ranks - 1) > c.budget(0),
            "heavy rank budget {} vs light rank budget {}",
            c.budget(ranks - 1),
            c.budget(0)
        );
    }

    #[test]
    fn conductor_beats_static_on_imbalanced_apps() {
        use crate::statics::StaticPolicy;
        let m = MachineSpec::e5_2670();
        let ranks = 8;
        let g = nasmz::generate_bt(&AppParams { ranks, iterations: 14, seed: 3 });
        let cap = ranks as f64 * 35.0;
        let (cond, _) = run_conductor(&g, &m, cap, ranks);
        let stat = Simulator::new(&g, &m, SimOptions::default())
            .run(&mut StaticPolicy::uniform(cap, ranks, 8))
            .unwrap();
        assert!(
            cond.makespan_s < stat.makespan_s,
            "conductor {} vs static {}",
            cond.makespan_s,
            stat.makespan_s
        );
    }

    #[test]
    fn warmup_explores_thread_counts() {
        let m = MachineSpec::e5_2670();
        let ranks = 4;
        let g = comd::generate(&AppParams { ranks, iterations: 6, seed: 9 });
        let (res, _) = run_conductor(&g, &m, ranks as f64 * 45.0, ranks);
        // During the first iterations, distinct thread counts appear.
        let first_iter_threads: std::collections::HashSet<u32> = res
            .tasks
            .iter()
            .filter(|t| t.start_s < res.vertex_times.iter().cloned().fold(0.0, f64::max) * 0.2)
            .map(|t| t.threads)
            .collect();
        assert!(first_iter_threads.len() >= 2, "{first_iter_threads:?}");
    }
}
