//! Property-based tests of the runtime policies over random workloads.

use pcap_apps::{CommPattern, Imbalance, SyntheticSpec};
use pcap_core::TaskFrontiers;
use pcap_machine::MachineSpec;
use pcap_sched::{Conductor, ConductorOptions, ConfigOnly, StaticPolicy};
use pcap_sim::{SimOptions, Simulator};
use proptest::prelude::*;

fn random_spec() -> impl Strategy<Value = SyntheticSpec> {
    (
        2u32..6,
        4u32..9,
        any::<u64>(),
        0.5..5.0f64,
        0.0..0.7f64,
        prop_oneof![
            Just(Imbalance::None),
            (0.01..0.2f64).prop_map(Imbalance::Jitter),
            (1.5..5.0f64).prop_map(Imbalance::Geometric),
            (1.5..4.0f64).prop_map(Imbalance::Straggler),
        ],
        prop_oneof![Just(CommPattern::Collectives), Just(CommPattern::RingHalo)],
    )
        .prop_map(|(ranks, iterations, seed, work, mem, imbalance, comm)| SyntheticSpec {
            ranks,
            iterations,
            seed,
            task_serial_s: work,
            mem_fraction: mem,
            imbalance,
            comm,
            ..Default::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Conductor keeps the instantaneous job power under the cap on any
    /// workload, regardless of what its reallocation decides.
    #[test]
    fn conductor_cap_safety(spec in random_spec(), per_socket in 25.0..85.0f64) {
        let m = MachineSpec::e5_2670();
        let g = spec.generate();
        let cap = per_socket * spec.ranks as f64;
        let frontiers = TaskFrontiers::build(&g, &m);
        let mut c = Conductor::new(cap, spec.ranks, m.max_threads, frontiers,
            ConductorOptions::default());
        let res = Simulator::new(&g, &m, SimOptions::default()).run(&mut c).unwrap();
        prop_assert!(res.respects_cap(cap), "peak {} over cap {}", res.power.max_power(), cap);
        // Budgets always partition the cap exactly.
        let total: f64 = (0..spec.ranks).map(|r| c.budget(r)).sum();
        prop_assert!((total - cap).abs() < 1e-6, "budgets {total} vs {cap}");
    }

    /// ConfigOnly and Static also never violate the cap.
    #[test]
    fn baselines_cap_safety(spec in random_spec(), per_socket in 25.0..85.0f64) {
        let m = MachineSpec::e5_2670();
        let g = spec.generate();
        let cap = per_socket * spec.ranks as f64;
        let sim = Simulator::new(&g, &m, SimOptions::default());
        let st = sim.run(&mut StaticPolicy::uniform(cap, spec.ranks, m.max_threads)).unwrap();
        prop_assert!(st.respects_cap(cap));
        let frontiers = TaskFrontiers::build(&g, &m);
        let co = sim
            .run(&mut ConfigOnly::new(cap, spec.ranks, frontiers, m.max_threads))
            .unwrap();
        prop_assert!(co.respects_cap(cap));
    }

    /// Noisy profiling never makes Conductor unsafe (only slower).
    #[test]
    fn noisy_profiles_stay_safe(
        spec in random_spec(),
        per_socket in 30.0..80.0f64,
        noise in 0.0..0.15f64,
    ) {
        let m = MachineSpec::e5_2670();
        let g = spec.generate();
        let cap = per_socket * spec.ranks as f64;
        let frontiers = TaskFrontiers::build(&g, &m);
        let opts = ConductorOptions { profile_noise_std: noise, ..Default::default() };
        let mut c = Conductor::new(cap, spec.ranks, m.max_threads, frontiers, opts);
        let res = Simulator::new(&g, &m, SimOptions::default()).run(&mut c).unwrap();
        prop_assert!(res.respects_cap(cap), "peak {} cap {}", res.power.max_power(), cap);
    }
}
