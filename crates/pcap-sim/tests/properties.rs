//! Property-based tests of the discrete-event simulator: conservation and
//! consistency laws that must hold for any application and any policy.

use pcap_apps::{CommPattern, Imbalance, SyntheticSpec};
use pcap_machine::MachineSpec;
use pcap_sim::{SimOptions, Simulator, UniformCapPolicy};
use proptest::prelude::*;

fn random_spec() -> impl Strategy<Value = SyntheticSpec> {
    (
        2u32..6,
        1u32..4,
        any::<u64>(),
        0.1..4.0f64,
        0.0..0.8f64,
        prop_oneof![
            Just(CommPattern::Collectives),
            Just(CommPattern::RingHalo),
            Just(CommPattern::HaloThenCollective),
        ],
        0.0..0.15f64,
    )
        .prop_map(|(ranks, iterations, seed, work, mem, comm, imb)| SyntheticSpec {
            ranks,
            iterations,
            seed,
            task_serial_s: work,
            mem_fraction: mem,
            comm,
            imbalance: Imbalance::Jitter(imb),
            ..Default::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every task executes exactly once and fits inside the makespan.
    #[test]
    fn every_task_runs_once(spec in random_spec(), cap in 25.0..90.0f64) {
        let m = MachineSpec::e5_2670();
        let g = spec.generate();
        let mut p = UniformCapPolicy { cap_w: cap, threads: 8 };
        let res = Simulator::new(&g, &m, SimOptions::default()).run(&mut p).unwrap();
        prop_assert_eq!(res.tasks.len(), g.num_tasks());
        let mut seen = vec![false; g.num_edges()];
        for t in &res.tasks {
            prop_assert!(!seen[t.task.index()], "task ran twice");
            seen[t.task.index()] = true;
            prop_assert!(t.start_s >= -1e-12);
            prop_assert!(t.end_s <= res.makespan_s + 1e-9);
            prop_assert!(t.end_s >= t.start_s);
        }
    }

    /// Tasks of the same rank never overlap in time.
    #[test]
    fn rank_serialization(spec in random_spec(), cap in 25.0..90.0f64) {
        let m = MachineSpec::e5_2670();
        let g = spec.generate();
        let mut p = UniformCapPolicy { cap_w: cap, threads: 8 };
        let res = Simulator::new(&g, &m, SimOptions::default()).run(&mut p).unwrap();
        let mut by_rank: Vec<Vec<(f64, f64)>> = vec![Vec::new(); g.num_ranks() as usize];
        for t in &res.tasks {
            by_rank[t.rank as usize].push((t.start_s, t.end_s));
        }
        for spans in &mut by_rank {
            spans.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for w in spans.windows(2) {
                prop_assert!(w[1].0 >= w[0].1 - 1e-9, "rank overlaps: {w:?}");
            }
        }
    }

    /// Job power never exceeds ranks x cap, and energy is consistent with
    /// the average-power x span identity.
    #[test]
    fn power_accounting(spec in random_spec(), cap in 25.0..90.0f64) {
        let m = MachineSpec::e5_2670();
        let g = spec.generate();
        let mut p = UniformCapPolicy { cap_w: cap, threads: 8 };
        let res = Simulator::new(&g, &m, SimOptions::ideal()).run(&mut p).unwrap();
        prop_assert!(res.respects_cap(cap * g.num_ranks() as f64));
        let avg = res.power.average_power();
        let energy = res.power.energy_j();
        prop_assert!((avg * res.makespan_s - energy).abs() <= 1e-6 * energy.max(1.0));
        prop_assert!(res.power.max_power() >= avg - 1e-9);
    }

    /// The realized vertex times respect every precedence edge.
    #[test]
    fn vertex_times_respect_precedence(spec in random_spec(), cap in 25.0..90.0f64) {
        let m = MachineSpec::e5_2670();
        let g = spec.generate();
        let mut p = UniformCapPolicy { cap_w: cap, threads: 8 };
        let res = Simulator::new(&g, &m, SimOptions::default()).run(&mut p).unwrap();
        for (_, e) in g.iter_edges() {
            prop_assert!(
                res.vertex_times[e.dst.index()] >= res.vertex_times[e.src.index()] - 1e-9
            );
        }
        prop_assert!(
            (res.vertex_times[g.finalize_vertex().index()] - res.makespan_s).abs() < 1e-9
        );
    }

    /// Overheads only ever slow things down, and by no more than their sum.
    #[test]
    fn overhead_bounds(spec in random_spec(), cap in 30.0..90.0f64) {
        let m = MachineSpec::e5_2670();
        let g = spec.generate();
        let ideal = Simulator::new(&g, &m, SimOptions::ideal())
            .run(&mut UniformCapPolicy { cap_w: cap, threads: 8 })
            .unwrap();
        let real = Simulator::new(&g, &m, SimOptions::default())
            .run(&mut UniformCapPolicy { cap_w: cap, threads: 8 })
            .unwrap();
        prop_assert!(real.makespan_s >= ideal.makespan_s - 1e-9);
        prop_assert!(real.makespan_s <= ideal.makespan_s + real.overhead_s + 1e-9);
    }

    /// Determinism: identical runs produce identical traces.
    #[test]
    fn deterministic(spec in random_spec(), cap in 25.0..90.0f64) {
        let m = MachineSpec::e5_2670();
        let g = spec.generate();
        let run = || {
            Simulator::new(&g, &m, SimOptions::default())
                .run(&mut UniformCapPolicy { cap_w: cap, threads: 8 })
                .unwrap()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.makespan_s, b.makespan_s);
        prop_assert_eq!(a.overhead_s, b.overhead_s);
        prop_assert_eq!(a.tasks.len(), b.tasks.len());
    }
}
