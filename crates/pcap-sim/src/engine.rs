//! The discrete-event execution engine.

use crate::policy::{Decision, Observation, Policy, SyncInfo};
use crate::trace::{PowerInterval, PowerTrace, SimResult, TaskRecord};
use pcap_dag::{EdgeId, EdgeKind, TaskGraph, VertexId, VertexKind};
use pcap_machine::{MachineSpec, Rapl};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Simulator knobs. Overhead defaults come straight from the paper's §6.2
/// measurements on Cab.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Instrumentation cost charged at every task start (per MPI call):
    /// 34 µs median in the paper.
    pub profiler_overhead_s: f64,
    /// Cost of a DVFS/concurrency switch between configurations: 145 µs
    /// median per task in the paper's replay runtime.
    pub switch_overhead_s: f64,
    /// Only switch configurations when the upcoming task is at least this
    /// long (the paper's 1 ms replay threshold, §6.1).
    pub switch_min_task_s: f64,
    /// Cost of a power-reallocation step at a `MPI_Pcontrol` sync: 566 µs
    /// in the paper.
    pub realloc_overhead_s: f64,
    /// Multiplicative std-dev of the measurement noise policies observe.
    pub noise_std: f64,
    /// PRNG seed for the noise channel.
    pub seed: u64,
}

impl Default for SimOptions {
    fn default() -> Self {
        Self {
            profiler_overhead_s: 34e-6,
            switch_overhead_s: 145e-6,
            switch_min_task_s: 1e-3,
            realloc_overhead_s: 566e-6,
            noise_std: 0.02,
            seed: 0xCAB,
        }
    }
}

impl SimOptions {
    /// Disables all overheads and noise — for analytic comparisons against
    /// idealized schedules.
    pub fn ideal() -> Self {
        Self {
            profiler_overhead_s: 0.0,
            switch_overhead_s: 0.0,
            switch_min_task_s: 0.0,
            realloc_overhead_s: 0.0,
            noise_std: 0.0,
            seed: 0,
        }
    }
}

/// Fatal simulation failures.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A task cannot make progress: its socket cap is at or below idle
    /// power, so the firmware gates the clock entirely.
    Stalled { task: usize, cap_w: f64 },
    /// A pinned segment had a non-positive frequency or empty segment list.
    BadSegments { task: usize },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Stalled { task, cap_w } => {
                write!(f, "task {task} stalled: cap {cap_w} W is below idle power")
            }
            SimError::BadSegments { task } => write!(f, "task {task} has invalid segments"),
        }
    }
}

impl std::error::Error for SimError {}

#[derive(Debug, Clone, Copy)]
struct RankState {
    /// Configuration of the last executed task: (freq GHz, threads,
    /// activity) — drives slack power and switch detection.
    last: Option<(f64, u32, f64)>,
    /// End time of the rank's last task.
    last_end_s: f64,
}

/// Event-queue key with total ordering on time.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Ev(f64, u32);
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

/// Discrete-event simulator for one application run.
///
/// ```
/// use pcap_dag::{GraphBuilder, VertexKind};
/// use pcap_machine::{MachineSpec, TaskModel};
/// use pcap_sim::{SimOptions, Simulator, UniformCapPolicy};
///
/// let mut b = GraphBuilder::new(1);
/// let init = b.vertex(VertexKind::Init, None);
/// let fin = b.vertex(VertexKind::Finalize, None);
/// b.task(init, fin, 0, TaskModel::compute_bound(1.0));
/// let graph = b.build().unwrap();
///
/// let machine = MachineSpec::e5_2670();
/// let sim = Simulator::new(&graph, &machine, SimOptions::ideal());
/// let res = sim.run(&mut UniformCapPolicy { cap_w: 60.0, threads: 8 }).unwrap();
/// assert!(res.makespan_s > 0.0);
/// assert!(res.power.max_power() <= 60.0 + 1e-9); // RAPL honours the cap
/// ```
pub struct Simulator<'a> {
    graph: &'a TaskGraph,
    machine: &'a MachineSpec,
    opts: SimOptions,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator for `graph` on `machine`.
    pub fn new(graph: &'a TaskGraph, machine: &'a MachineSpec, opts: SimOptions) -> Self {
        Self { graph, machine, opts }
    }

    /// Runs the application to completion under `policy`.
    pub fn run(&self, policy: &mut dyn Policy) -> Result<SimResult, SimError> {
        let g = self.graph;
        let nv = g.num_vertices();
        let mut indeg: Vec<usize> = (0..nv).map(|i| g.in_edges(vid(i)).len()).collect();
        let mut vtime = vec![0.0_f64; nv];
        let mut queue: BinaryHeap<Reverse<Ev>> = BinaryHeap::new();
        let mut ranks = vec![RankState { last: None, last_end_s: 0.0 }; g.num_ranks() as usize];
        let mut intervals: Vec<PowerInterval> = Vec::new();
        let mut records: Vec<TaskRecord> = Vec::new();
        let mut pending_obs: Vec<Option<Observation>> = vec![None; g.num_edges()];
        let mut rng = StdRng::seed_from_u64(self.opts.seed);
        let mut overhead_total = 0.0_f64;
        let mut sync_count = 0u32;

        // Fire the Init vertex.
        let mut ready: Vec<VertexId> = vec![g.init_vertex()];

        loop {
            // Fire all ready vertices (their time is already final).
            while let Some(v) = ready.pop() {
                let mut t = vtime[v.index()];
                let kind = g.vertex(v).kind;
                if kind.is_global_sync() && kind != VertexKind::Init {
                    let info = SyncInfo {
                        time_s: t,
                        is_pcontrol: kind == VertexKind::Pcontrol,
                        sync_index: sync_count,
                    };
                    sync_count += 1;
                    if policy.at_sync(&info) {
                        t += self.opts.realloc_overhead_s;
                        overhead_total += self.opts.realloc_overhead_s;
                    }
                }
                for &e in g.out_edges(v) {
                    let end = match &g.edge(e).kind {
                        EdgeKind::Message { bytes, .. } => t + g.comm().message_time(*bytes),
                        EdgeKind::Task { rank, model } => {
                            let r = *rank as usize;
                            let decision = policy.choose(e, *rank, t);
                            let (segs, stalled) = self.resolve(model, &decision);
                            if stalled {
                                return Err(SimError::Stalled {
                                    task: e.index(),
                                    cap_w: match decision {
                                        Decision::Cap { cap_w, .. } => cap_w,
                                        _ => f64::NAN,
                                    },
                                });
                            }
                            if segs.is_empty() || segs.iter().any(|s| s.0 <= 0.0) {
                                return Err(SimError::BadSegments { task: e.index() });
                            }

                            // Overheads: profiler at every MPI call, plus a
                            // switch cost when the configuration changes and
                            // the task is long enough to bother.
                            let mut start = t + self.opts.profiler_overhead_s;
                            overhead_total += self.opts.profiler_overhead_s;
                            let first = (segs[0].0, segs[0].1);
                            let nominal: f64 = segs
                                .iter()
                                .map(|&(f, th, frac)| frac * model.duration(self.machine, f, th))
                                .sum();
                            let switches = match ranks[r].last {
                                Some((f, th, _)) if (f - first.0).abs() < 1e-9 && th == first.1 => {
                                    segs.len() - 1
                                }
                                None => segs.len() - 1,
                                Some(_) => segs.len(),
                            };
                            if nominal >= self.opts.switch_min_task_s && switches > 0 {
                                let cost = switches as f64 * self.opts.switch_overhead_s;
                                start += cost;
                                overhead_total += cost;
                            }

                            // Slack interval while the rank waited for this
                            // vertex (draws slack power of its previous
                            // configuration; idle power before the first task).
                            let slack_p = match ranks[r].last {
                                Some((f, th, act)) => self.machine.slack_power(f, th, act),
                                None => self.machine.power.p_idle,
                            };
                            if start > ranks[r].last_end_s {
                                intervals.push(PowerInterval {
                                    start_s: ranks[r].last_end_s,
                                    end_s: start,
                                    power_w: slack_p,
                                });
                            }

                            // Execute segments.
                            let mut seg_t = start;
                            let mut energy = 0.0;
                            let mut freq_time = 0.0;
                            for &(f, th, frac) in &segs {
                                let d = frac * model.duration(self.machine, f, th);
                                let p = model.power(self.machine, f, th);
                                if d > 0.0 {
                                    intervals.push(PowerInterval {
                                        start_s: seg_t,
                                        end_s: seg_t + d,
                                        power_w: p,
                                    });
                                }
                                energy += p * d;
                                freq_time += f * d;
                                seg_t += d;
                            }
                            let end = seg_t;
                            let dur = end - start;
                            let last_seg = *segs.last().unwrap();
                            ranks[r].last = Some((last_seg.0, last_seg.1, model.activity));
                            ranks[r].last_end_s = end;

                            let avg_p = if dur > 0.0 { energy / dur } else { 0.0 };
                            let avg_f = if dur > 0.0 { freq_time / dur } else { last_seg.0 };
                            records.push(TaskRecord {
                                task: e,
                                rank: *rank,
                                start_s: start,
                                end_s: end,
                                avg_power_w: avg_p,
                                threads: last_seg.1,
                                avg_freq_ghz: avg_f,
                            });
                            // Noisy measurement delivered at completion.
                            let noise = |rng: &mut StdRng, std: f64| {
                                if std == 0.0 {
                                    1.0
                                } else {
                                    // Box-Muller.
                                    let u1: f64 = rng.gen_range(1e-12..1.0);
                                    let u2: f64 = rng.gen_range(0.0..1.0);
                                    let z = (-2.0 * u1.ln()).sqrt()
                                        * (2.0 * std::f64::consts::PI * u2).cos();
                                    (1.0 + std * z).max(0.01)
                                }
                            };
                            pending_obs[e.index()] = Some(Observation {
                                task: e,
                                rank: *rank,
                                duration_s: dur * noise(&mut rng, self.opts.noise_std),
                                power_w: avg_p * noise(&mut rng, self.opts.noise_std),
                                threads: last_seg.1,
                                end_time_s: end,
                            });
                            end
                        }
                    };
                    queue.push(Reverse(Ev(end, e.index() as u32)));
                }
            }

            // Pop the next completion.
            let Some(Reverse(Ev(t, eidx))) = queue.pop() else {
                break;
            };
            let e = EdgeId::from_index(eidx as usize);
            if let Some(obs) = pending_obs[eidx as usize].take() {
                policy.observe(&obs);
            }
            let dst = self.graph.edge(e).dst;
            if t > vtime[dst.index()] {
                vtime[dst.index()] = t;
            }
            indeg[dst.index()] -= 1;
            if indeg[dst.index()] == 0 {
                ready.push(dst);
            }
        }

        let makespan = vtime[g.finalize_vertex().index()];
        // Trailing slack until Finalize for every rank.
        for r in ranks.iter() {
            if makespan > r.last_end_s {
                let p = match r.last {
                    Some((f, th, act)) => self.machine.slack_power(f, th, act),
                    None => self.machine.power.p_idle,
                };
                intervals.push(PowerInterval {
                    start_s: r.last_end_s,
                    end_s: makespan,
                    power_w: p,
                });
            }
        }

        Ok(SimResult {
            makespan_s: makespan,
            tasks: records,
            power: PowerTrace::from_intervals(&intervals),
            overhead_s: overhead_total,
            vertex_times: vtime,
        })
    }

    /// Resolves a decision into pinned segments `(f_ghz, threads, fraction)`.
    /// The boolean reports a stall (cap below idle).
    fn resolve(
        &self,
        model: &pcap_machine::TaskModel,
        decision: &Decision,
    ) -> (Vec<(f64, u32, f64)>, bool) {
        match decision {
            Decision::Cap { cap_w, threads } => {
                let f = Rapl::new(*cap_w).effective_frequency(self.machine, model, *threads);
                if f <= 0.0 {
                    (vec![], true)
                } else {
                    (vec![(f, *threads, 1.0)], false)
                }
            }
            Decision::Pinned { segments } => {
                let total: f64 = segments.iter().map(|s| s.work_fraction).sum();
                if segments.is_empty() || total <= 0.0 {
                    return (vec![], false);
                }
                (
                    segments
                        .iter()
                        .filter(|s| s.work_fraction > 0.0)
                        .map(|s| (s.f_ghz, s.threads, s.work_fraction / total))
                        .collect(),
                    false,
                )
            }
        }
    }
}

fn vid(i: usize) -> VertexId {
    // Safe: the graph guarantees dense indices.
    VertexId::from_index(i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::UniformCapPolicy;
    use pcap_apps::{comd, AppParams};
    use pcap_dag::{GraphBuilder, VertexKind};
    use pcap_machine::TaskModel;

    fn machine() -> MachineSpec {
        MachineSpec::e5_2670()
    }

    fn two_rank_graph() -> TaskGraph {
        let mut b = GraphBuilder::new(2);
        let init = b.vertex(VertexKind::Init, None);
        let coll = b.vertex(VertexKind::Collective, None);
        let fin = b.vertex(VertexKind::Finalize, None);
        b.task(init, coll, 0, TaskModel::compute_bound(1.0));
        b.task(init, coll, 1, TaskModel::compute_bound(2.0));
        b.task(coll, fin, 0, TaskModel::compute_bound(1.0));
        b.task(coll, fin, 1, TaskModel::compute_bound(0.5));
        b.build().unwrap()
    }

    #[test]
    fn makespan_matches_analytic_value_without_overheads() {
        let g = two_rank_graph();
        let m = machine();
        let sim = Simulator::new(&g, &m, SimOptions::ideal());
        let mut pol = UniformCapPolicy { cap_w: 200.0, threads: 8 };
        let res = sim.run(&mut pol).unwrap();
        // Uncapped: every task at fmax with 8 threads.
        let d = |w: f64| TaskModel::compute_bound(w).duration(&m, 2.6, 8);
        let expected = d(2.0) + d(1.0);
        assert!((res.makespan_s - expected).abs() < 1e-9);
        assert_eq!(res.tasks.len(), 4);
    }

    #[test]
    fn overheads_increase_makespan() {
        let g = two_rank_graph();
        let m = machine();
        let ideal = Simulator::new(&g, &m, SimOptions::ideal())
            .run(&mut UniformCapPolicy { cap_w: 200.0, threads: 8 })
            .unwrap();
        let real = Simulator::new(&g, &m, SimOptions::default())
            .run(&mut UniformCapPolicy { cap_w: 200.0, threads: 8 })
            .unwrap();
        assert!(real.makespan_s > ideal.makespan_s);
        assert!(real.overhead_s > 0.0);
    }

    #[test]
    fn uniform_cap_bounds_job_power() {
        let g = two_rank_graph();
        let m = machine();
        let sim = Simulator::new(&g, &m, SimOptions::ideal());
        let cap = 40.0;
        let res = sim.run(&mut UniformCapPolicy { cap_w: cap, threads: 8 }).unwrap();
        assert!(res.respects_cap(cap * 2.0), "max {}", res.power.max_power());
    }

    #[test]
    fn tighter_caps_run_slower() {
        let g = two_rank_graph();
        let m = machine();
        let sim = Simulator::new(&g, &m, SimOptions::ideal());
        let mut prev = 0.0;
        for cap in [80.0, 60.0, 45.0, 35.0, 28.0] {
            let res = sim.run(&mut UniformCapPolicy { cap_w: cap, threads: 8 }).unwrap();
            assert!(res.makespan_s >= prev, "cap {cap}");
            prev = res.makespan_s;
        }
    }

    #[test]
    fn impossible_cap_stalls() {
        let g = two_rank_graph();
        let m = machine();
        let sim = Simulator::new(&g, &m, SimOptions::ideal());
        let err = sim.run(&mut UniformCapPolicy { cap_w: 10.0, threads: 8 }).unwrap_err();
        assert!(matches!(err, SimError::Stalled { .. }));
    }

    #[test]
    fn pinned_segments_execute_in_order() {
        struct PinBoth;
        impl Policy for PinBoth {
            fn choose(&mut self, _t: EdgeId, _r: u32, _n: f64) -> Decision {
                Decision::Pinned {
                    segments: vec![
                        crate::policy::Segment { f_ghz: 2.6, threads: 8, work_fraction: 0.5 },
                        crate::policy::Segment { f_ghz: 1.2, threads: 4, work_fraction: 0.5 },
                    ],
                }
            }
        }
        let g = two_rank_graph();
        let m = machine();
        let res = Simulator::new(&g, &m, SimOptions::ideal()).run(&mut PinBoth).unwrap();
        let model = TaskModel::compute_bound(2.0);
        let expected = 0.5 * model.duration(&m, 2.6, 8) + 0.5 * model.duration(&m, 1.2, 4);
        let longest = res.tasks.iter().map(|t| t.duration()).fold(0.0_f64, f64::max);
        assert!((longest - expected).abs() < 1e-9, "{longest} vs {expected}");
    }

    #[test]
    fn slack_power_appears_between_tasks() {
        // Rank 0 finishes its 1.0 task early and waits for rank 1's 2.0
        // task; during the wait the job draws rank-0 slack + rank-1 busy.
        let g = two_rank_graph();
        let m = machine();
        let res = Simulator::new(&g, &m, SimOptions::ideal())
            .run(&mut UniformCapPolicy { cap_w: 200.0, threads: 8 })
            .unwrap();
        let model = TaskModel::compute_bound(1.0);
        let t_short = model.duration(&m, 2.6, 8);
        // Probe the window between rank 0 finishing and the collective.
        let probe = t_short * 1.5;
        let busy = m.socket_power(2.6, 8, 1.0);
        let slack = m.slack_power(2.6, 8, 1.0);
        let p = res.power.power_at(probe);
        assert!((p - (busy + slack)).abs() < 1e-6, "p {p} busy {busy} slack {slack}");
    }

    #[test]
    fn comd_app_runs_end_to_end() {
        let g = comd::generate(&AppParams { ranks: 8, iterations: 3, seed: 1 });
        let m = machine();
        let res = Simulator::new(&g, &m, SimOptions::default())
            .run(&mut UniformCapPolicy { cap_w: 50.0, threads: 8 })
            .unwrap();
        assert!(res.makespan_s > 0.0);
        assert_eq!(res.tasks.len(), g.num_tasks());
        assert!(res.respects_cap(50.0 * 8.0 + 1.0));
    }

    #[test]
    fn observations_are_delivered_in_completion_order() {
        struct Recorder(Vec<f64>);
        impl Policy for Recorder {
            fn choose(&mut self, _t: EdgeId, _r: u32, _n: f64) -> Decision {
                Decision::Cap { cap_w: 200.0, threads: 8 }
            }
            fn observe(&mut self, obs: &Observation) {
                self.0.push(obs.end_time_s);
            }
        }
        let g = two_rank_graph();
        let m = machine();
        let mut rec = Recorder(vec![]);
        Simulator::new(&g, &m, SimOptions::ideal()).run(&mut rec).unwrap();
        assert_eq!(rec.0.len(), 4);
        for w in rec.0.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }
}
