//! # pcap-sim — discrete-event cluster simulator
//!
//! Stands in for the paper's Cab cluster runs: executes an application
//! [`pcap_dag::TaskGraph`] under a power-allocation [`Policy`], producing
//! per-task records, a job-level instantaneous power trace, and the
//! makespan. It models what the paper measures:
//!
//! * **RAPL capping** — a task launched under a socket cap runs at the
//!   highest effective frequency fitting the cap ([`pcap_machine::Rapl`]),
//!   including clock modulation below the lowest DVFS state;
//! * **slack power** — a rank blocked in MPI draws
//!   [`pcap_machine::MachineSpec::slack_power`] of its last configuration;
//! * **overheads** (paper §6.2) — profiler cost per MPI call, DVFS/config
//!   switch latency between tasks, and power-reallocation cost at
//!   `MPI_Pcontrol` synchronization points;
//! * **measurement noise** — policies observe task duration/power through a
//!   multiplicative noise channel, which is what makes adaptive runtimes
//!   (Conductor) occasionally misjudge the critical path, as the paper
//!   reports for SP-MZ.
//!
//! Replaying an LP schedule (paper §6.1) is just another policy:
//! [`replay::ReplayPolicy`] pins each task to the schedule's configuration
//! segments, and the resulting power trace verifies the job-level cap.

pub mod engine;
pub mod policy;
pub mod replay;
pub mod trace;

pub use engine::{SimOptions, Simulator};
pub use policy::{Decision, Observation, Policy, Segment, SyncInfo, UniformCapPolicy};
pub use replay::{ConfigSchedule, ReplayPolicy};
pub use trace::{PowerTrace, ReplayViolation, SimResult, TaskRecord};
