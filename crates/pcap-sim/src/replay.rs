//! Schedule replay: executing an explicit per-task plan.
//!
//! The paper validates its LP/ILP schedules by replaying them on the real
//! benchmarks (§6.1): a runtime switches the configuration at every MPI call
//! according to the prescribed schedule, with RAPL enforcing each socket's
//! power allocation. Here the same role is played by [`ReplayPolicy`], which
//! executes the per-task [`Decision`]s recorded in a [`ConfigSchedule`];
//! running it through the simulator checks both that the schedule is
//! *realizable* (precedence holds, makespan matches) and that the job-level
//! power constraint is respected.
//!
//! Two kinds of plans arise from LP schedules:
//!
//! * **Pinned segments** — the literal mid-task configuration switch that
//!   realizes a continuous configuration. Durations reproduce the LP
//!   exactly, but while two overlapping tasks are both in their high-power
//!   segment the *instantaneous* job power can transiently exceed the cap
//!   (the averages still satisfy it).
//! * **Per-task RAPL caps** — each socket is capped at the task's allocated
//!   average power, as the paper's replay runtime does. Instantaneous
//!   compliance is then guaranteed; durations land on the machine's true
//!   (convex) power/time curve, at or below the LP's chord interpolation
//!   when the thread count matches.

use crate::policy::{Decision, Policy};
use pcap_dag::EdgeId;

/// A complete plan: for every task edge, the [`Decision`] to execute.
#[derive(Debug, Clone, Default)]
pub struct ConfigSchedule {
    /// Indexed by edge id; `None` for message edges or unscheduled tasks.
    decisions: Vec<Option<Decision>>,
}

impl ConfigSchedule {
    /// An empty schedule able to hold `num_edges` entries.
    pub fn new(num_edges: usize) -> Self {
        Self { decisions: vec![None; num_edges] }
    }

    /// Assigns the decision of one task.
    pub fn set(&mut self, task: EdgeId, decision: Decision) {
        if task.index() >= self.decisions.len() {
            self.decisions.resize(task.index() + 1, None);
        }
        self.decisions[task.index()] = Some(decision);
    }

    /// Looks up a task's plan.
    pub fn get(&self, task: EdgeId) -> Option<&Decision> {
        self.decisions.get(task.index()).and_then(|s| s.as_ref())
    }

    /// Number of scheduled tasks.
    pub fn len(&self) -> usize {
        self.decisions.iter().filter(|s| s.is_some()).count()
    }

    /// True when no task has a plan.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Policy that replays a [`ConfigSchedule`]. Tasks missing from the schedule
/// fall back to the given default cap and thread count (used for the tiny
/// bookkeeping stubs the formulations don't bother scheduling).
#[derive(Debug, Clone)]
pub struct ReplayPolicy {
    schedule: ConfigSchedule,
    /// Fallback for unscheduled tasks.
    pub fallback_cap_w: f64,
    /// Fallback thread count.
    pub fallback_threads: u32,
}

impl ReplayPolicy {
    /// Creates a replay policy with the given fallback operating point.
    pub fn new(schedule: ConfigSchedule, fallback_cap_w: f64, fallback_threads: u32) -> Self {
        Self { schedule, fallback_cap_w, fallback_threads }
    }
}

impl Policy for ReplayPolicy {
    fn choose(&mut self, task: EdgeId, _rank: u32, _now: f64) -> Decision {
        match self.schedule.get(task) {
            Some(d) => d.clone(),
            None => Decision::Cap { cap_w: self.fallback_cap_w, threads: self.fallback_threads },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SimOptions, Simulator};
    use crate::policy::Segment;
    use pcap_dag::{GraphBuilder, VertexKind};
    use pcap_machine::{MachineSpec, TaskModel};

    #[test]
    fn replay_pins_configurations() {
        let mut b = GraphBuilder::new(1);
        let init = b.vertex(VertexKind::Init, None);
        let fin = b.vertex(VertexKind::Finalize, None);
        let t = b.task(init, fin, 0, TaskModel::compute_bound(1.0));
        let g = b.build().unwrap();
        let m = MachineSpec::e5_2670();

        let mut sched = ConfigSchedule::new(g.num_edges());
        sched.set(
            t,
            Decision::Pinned {
                segments: vec![Segment { f_ghz: 1.5, threads: 4, work_fraction: 1.0 }],
            },
        );
        let mut pol = ReplayPolicy::new(sched, 100.0, 8);
        let res = Simulator::new(&g, &m, SimOptions::ideal()).run(&mut pol).unwrap();
        let expected = TaskModel::compute_bound(1.0).duration(&m, 1.5, 4);
        assert!((res.makespan_s - expected).abs() < 1e-9);
        assert_eq!(res.tasks[0].threads, 4);
    }

    #[test]
    fn replay_cap_decisions_go_through_rapl() {
        let mut b = GraphBuilder::new(1);
        let init = b.vertex(VertexKind::Init, None);
        let fin = b.vertex(VertexKind::Finalize, None);
        let t = b.task(init, fin, 0, TaskModel::compute_bound(1.0));
        let g = b.build().unwrap();
        let m = MachineSpec::e5_2670();
        let mut sched = ConfigSchedule::new(g.num_edges());
        sched.set(t, Decision::Cap { cap_w: 45.0, threads: 8 });
        let mut pol = ReplayPolicy::new(sched, 100.0, 8);
        let res = Simulator::new(&g, &m, SimOptions::ideal()).run(&mut pol).unwrap();
        assert!(res.power.max_power() <= 45.0 + 1e-9);
    }

    #[test]
    fn unscheduled_tasks_use_fallback() {
        let mut b = GraphBuilder::new(1);
        let init = b.vertex(VertexKind::Init, None);
        let fin = b.vertex(VertexKind::Finalize, None);
        let _t = b.task(init, fin, 0, TaskModel::compute_bound(1.0));
        let g = b.build().unwrap();
        let m = MachineSpec::e5_2670();
        let mut pol = ReplayPolicy::new(ConfigSchedule::new(g.num_edges()), 200.0, 8);
        let res = Simulator::new(&g, &m, SimOptions::ideal()).run(&mut pol).unwrap();
        let expected = TaskModel::compute_bound(1.0).duration(&m, 2.6, 8);
        assert!((res.makespan_s - expected).abs() < 1e-9);
    }

    #[test]
    fn schedule_accessors() {
        let mut s = ConfigSchedule::new(2);
        assert!(s.is_empty());
        let seg = Decision::Pinned {
            segments: vec![Segment { f_ghz: 2.0, threads: 2, work_fraction: 1.0 }],
        };
        s.set(EdgeId::from_index(1), seg);
        assert_eq!(s.len(), 1);
        assert!(s.get(EdgeId::from_index(0)).is_none());
        assert!(s.get(EdgeId::from_index(1)).is_some());
        // Out-of-range set grows the table.
        s.set(EdgeId::from_index(5), Decision::Cap { cap_w: 30.0, threads: 1 });
        assert_eq!(s.len(), 2);
    }
}
