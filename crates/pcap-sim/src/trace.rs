//! Simulation outputs: task records and job power traces.

use pcap_dag::EdgeId;

/// Execution record of one computation task.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskRecord {
    pub task: EdgeId,
    pub rank: u32,
    /// Start of execution (after any switch/profiler overheads).
    pub start_s: f64,
    /// End of execution.
    pub end_s: f64,
    /// Time-averaged socket power over the execution.
    pub avg_power_w: f64,
    /// Threads used (of the last segment when pinned schedules switch).
    pub threads: u32,
    /// Time-averaged effective frequency in GHz.
    pub avg_freq_ghz: f64,
}

impl TaskRecord {
    /// Wall-clock duration.
    pub fn duration(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// A step-function power interval contributed by one rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct PowerInterval {
    pub start_s: f64,
    pub end_s: f64,
    pub power_w: f64,
}

/// Job-level instantaneous power as a step function of time, assembled from
/// every rank's busy/slack/idle intervals.
#[derive(Debug, Clone)]
pub struct PowerTrace {
    /// Breakpoint times, ascending.
    times: Vec<f64>,
    /// Power on `[times[i], times[i+1])`; `powers.len() == times.len() - 1`.
    powers: Vec<f64>,
}

impl PowerTrace {
    pub(crate) fn from_intervals(intervals: &[PowerInterval]) -> Self {
        if intervals.is_empty() {
            return Self { times: vec![0.0], powers: vec![] };
        }
        let mut times: Vec<f64> = intervals
            .iter()
            .flat_map(|iv| [iv.start_s, iv.end_s])
            .filter(|t| t.is_finite())
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        times.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        let mut powers = vec![0.0; times.len().saturating_sub(1)];
        for iv in intervals {
            if iv.end_s <= iv.start_s {
                continue;
            }
            let lo = times.partition_point(|&t| t < iv.start_s - 1e-12);
            for k in lo..powers.len() {
                if times[k] >= iv.end_s - 1e-12 {
                    break;
                }
                powers[k] += iv.power_w;
            }
        }
        Self { times, powers }
    }

    /// Peak instantaneous job power.
    pub fn max_power(&self) -> f64 {
        self.powers.iter().cloned().fold(0.0, f64::max)
    }

    /// Power at time `t` (0 outside the trace).
    pub fn power_at(&self, t: f64) -> f64 {
        if self.powers.is_empty() || t < self.times[0] || t >= *self.times.last().unwrap() {
            return 0.0;
        }
        let k = self.times.partition_point(|&x| x <= t).saturating_sub(1);
        self.powers.get(k).copied().unwrap_or(0.0)
    }

    /// Time-averaged power over the trace span.
    pub fn average_power(&self) -> f64 {
        let span = self.times.last().unwrap() - self.times[0];
        if span <= 0.0 {
            return 0.0;
        }
        self.energy_j() / span
    }

    /// Total energy in joules.
    pub fn energy_j(&self) -> f64 {
        self.powers.iter().zip(self.times.windows(2)).map(|(p, w)| p * (w[1] - w[0])).sum()
    }

    /// Breakpoints and step values, for plotting/export.
    pub fn steps(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.times.iter().copied().zip(self.powers.iter().copied())
    }
}

/// Complete result of one simulated application run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Time of `MPI_Finalize`.
    pub makespan_s: f64,
    /// One record per computation task.
    pub tasks: Vec<TaskRecord>,
    /// Job-level instantaneous power.
    pub power: PowerTrace,
    /// Total switch + profiler + reallocation overhead charged (seconds,
    /// summed across ranks).
    pub overhead_s: f64,
    /// Realized time of every DAG vertex (indexed by vertex) — used e.g. to
    /// discard warm-up iterations by reading `MPI_Pcontrol` vertex times.
    pub vertex_times: Vec<f64>,
}

impl SimResult {
    /// True when instantaneous job power never exceeds `cap_w` (with a
    /// relative tolerance for float accumulation).
    pub fn respects_cap(&self, cap_w: f64) -> bool {
        self.power.max_power() <= cap_w * (1.0 + 1e-9) + 1e-9
    }

    /// Records of tasks longer than `min_duration_s` — the paper's Figure 12
    /// and Table 3 filter ("long-running tasks").
    pub fn long_tasks(&self, min_duration_s: f64) -> Vec<&TaskRecord> {
        self.tasks.iter().filter(|t| t.duration() >= min_duration_s).collect()
    }

    /// Cross-checks a replayed schedule against its originating LP solution
    /// (paper §6.1): instantaneous job power must stay within
    /// `cap_w · overshoot` at **every** step of the trace, and the realized
    /// makespan must never beat the LP's lower bound `bound_s` (within a
    /// relative tolerance `rel_tol` for float accumulation). `overshoot` is
    /// the replay mode's documented transient margin — `1.0` for a strict
    /// cap, larger for segment replay where overlapping high-power segments
    /// may transiently exceed the allocation.
    ///
    /// Returns the first violation found, with the offending step time, so
    /// property suites can report *where* a schedule went over budget.
    pub fn verify_replay(
        &self,
        cap_w: f64,
        overshoot: f64,
        bound_s: f64,
        rel_tol: f64,
    ) -> Result<(), ReplayViolation> {
        let limit = cap_w * overshoot;
        let threshold = limit * (1.0 + 1e-9) + 1e-9;
        for (t, p) in self.power.steps() {
            if p > threshold {
                return Err(ReplayViolation::CapExceeded { at_s: t, power_w: p, limit_w: limit });
            }
        }
        if self.makespan_s < bound_s * (1.0 - rel_tol) {
            return Err(ReplayViolation::BeatsBound { makespan_s: self.makespan_s, bound_s });
        }
        Ok(())
    }
}

/// A violation found by [`SimResult::verify_replay`].
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayViolation {
    /// Instantaneous job power exceeded the allowed envelope at some step.
    CapExceeded {
        /// Start of the violating step.
        at_s: f64,
        /// Job power over that step.
        power_w: f64,
        /// The envelope (`cap_w · overshoot`) that was exceeded.
        limit_w: f64,
    },
    /// The replay finished before the LP bound says any schedule could.
    BeatsBound { makespan_s: f64, bound_s: f64 },
}

impl std::fmt::Display for ReplayViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayViolation::CapExceeded { at_s, power_w, limit_w } => {
                write!(f, "job power {power_w} W exceeds the {limit_w} W envelope at t = {at_s} s")
            }
            ReplayViolation::BeatsBound { makespan_s, bound_s } => {
                write!(f, "replay finished at {makespan_s} s, before the LP bound {bound_s} s")
            }
        }
    }
}

impl std::error::Error for ReplayViolation {}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(s: f64, e: f64, p: f64) -> PowerInterval {
        PowerInterval { start_s: s, end_s: e, power_w: p }
    }

    #[test]
    fn trace_sums_overlapping_intervals() {
        let tr = PowerTrace::from_intervals(&[iv(0.0, 2.0, 10.0), iv(1.0, 3.0, 5.0)]);
        assert_eq!(tr.power_at(0.5), 10.0);
        assert_eq!(tr.power_at(1.5), 15.0);
        assert_eq!(tr.power_at(2.5), 5.0);
        assert_eq!(tr.max_power(), 15.0);
        assert!((tr.energy_j() - (10.0 * 2.0 + 5.0 * 2.0)).abs() < 1e-9);
    }

    #[test]
    fn average_power_is_energy_over_span() {
        let tr = PowerTrace::from_intervals(&[iv(0.0, 4.0, 8.0)]);
        assert!((tr.average_power() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_zero() {
        let tr = PowerTrace::from_intervals(&[]);
        assert_eq!(tr.max_power(), 0.0);
        assert_eq!(tr.power_at(1.0), 0.0);
    }

    #[test]
    fn zero_length_intervals_are_ignored() {
        let tr = PowerTrace::from_intervals(&[iv(1.0, 1.0, 100.0), iv(0.0, 2.0, 3.0)]);
        assert_eq!(tr.max_power(), 3.0);
    }

    fn result_with(trace: PowerTrace, makespan_s: f64) -> SimResult {
        SimResult {
            makespan_s,
            tasks: Vec::new(),
            power: trace,
            overhead_s: 0.0,
            vertex_times: Vec::new(),
        }
    }

    #[test]
    fn verify_replay_accepts_capped_on_time_runs() {
        let tr = PowerTrace::from_intervals(&[iv(0.0, 2.0, 40.0), iv(1.0, 3.0, 55.0)]);
        let r = result_with(tr, 3.0);
        // Peak 95 W < 100 W, finishes exactly on the bound.
        r.verify_replay(100.0, 1.0, 3.0, 1e-9).unwrap();
    }

    #[test]
    fn verify_replay_pins_the_overshooting_step() {
        let tr = PowerTrace::from_intervals(&[iv(0.0, 2.0, 40.0), iv(1.0, 3.0, 80.0)]);
        let r = result_with(tr, 3.0);
        match r.verify_replay(100.0, 1.0, 3.0, 1e-9) {
            Err(ReplayViolation::CapExceeded { at_s, power_w, limit_w }) => {
                assert_eq!(at_s, 1.0);
                assert_eq!(power_w, 120.0);
                assert_eq!(limit_w, 100.0);
            }
            other => panic!("expected CapExceeded, got {other:?}"),
        }
        // The documented transient margin admits the same trace.
        r.verify_replay(100.0, 1.25, 3.0, 1e-9).unwrap();
    }

    #[test]
    fn verify_replay_rejects_beating_the_bound() {
        let tr = PowerTrace::from_intervals(&[iv(0.0, 2.0, 40.0)]);
        let r = result_with(tr, 2.0);
        match r.verify_replay(100.0, 1.0, 2.5, 1e-6) {
            Err(ReplayViolation::BeatsBound { makespan_s, bound_s }) => {
                assert_eq!(makespan_s, 2.0);
                assert_eq!(bound_s, 2.5);
            }
            other => panic!("expected BeatsBound, got {other:?}"),
        }
        // Finishing a hair early is within the float tolerance.
        result_with(PowerTrace::from_intervals(&[iv(0.0, 2.0, 40.0)]), 2.5 - 1e-9)
            .verify_replay(100.0, 1.0, 2.5, 1e-6)
            .unwrap();
    }
}
