//! The policy interface between the simulator and power-allocation runtimes.

use pcap_dag::EdgeId;

/// One pinned execution segment: run `work_fraction` of the task at the
/// given operating point. Used by schedule replay to realize the LP's
/// continuous configurations as a mid-task switch between two discrete
/// frontier configurations (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Effective frequency in GHz (a real DVFS state when replaying
    /// discrete schedules; any positive value for analysis runs).
    pub f_ghz: f64,
    /// OpenMP threads.
    pub threads: u32,
    /// Fraction of the task's work done in this segment (fractions over a
    /// task sum to 1).
    pub work_fraction: f64,
}

/// A runtime decision for one ready task.
#[derive(Debug, Clone, PartialEq)]
pub enum Decision {
    /// Run under a RAPL socket cap with a chosen thread count; the firmware
    /// model picks the effective frequency. This is how Static and
    /// Conductor actually drive the hardware.
    Cap { cap_w: f64, threads: u32 },
    /// Pin explicit configuration segments (schedule replay).
    Pinned { segments: Vec<Segment> },
}

/// What a policy gets to see after a task completes. Duration and power pass
/// through the simulator's measurement-noise channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    pub task: EdgeId,
    pub rank: u32,
    /// Measured (noisy) wall-clock duration in seconds.
    pub duration_s: f64,
    /// Measured (noisy) average socket power in watts.
    pub power_w: f64,
    /// Threads the task ran with.
    pub threads: u32,
    /// Simulation time at completion.
    pub end_time_s: f64,
}

/// Context delivered at a global synchronization vertex.
#[derive(Debug, Clone, PartialEq)]
pub struct SyncInfo {
    /// Simulation time of the synchronization.
    pub time_s: f64,
    /// True when this vertex is an `MPI_Pcontrol` iteration marker.
    pub is_pcontrol: bool,
    /// Index of this sync among syncs seen so far.
    pub sync_index: u32,
}

/// A power-allocation runtime under evaluation.
pub trait Policy {
    /// Chooses how to run `task` (on `rank`), which became ready at `now`.
    fn choose(&mut self, task: EdgeId, rank: u32, now: f64) -> Decision;

    /// Receives a (noisy) measurement after a task completes.
    fn observe(&mut self, _obs: &Observation) {}

    /// Called when a global synchronization vertex fires. Returning `true`
    /// means the policy performed a power-reallocation step, which charges
    /// the reallocation overhead to all ranks (paper §6.2: 566 µs).
    fn at_sync(&mut self, _info: &SyncInfo) -> bool {
        false
    }
}

/// The simplest policy: every socket runs every task under the same RAPL cap
/// with all hardware threads — the de-facto "Static" production scheme
/// (paper §4.1) and the simulator's test workhorse.
#[derive(Debug, Clone, Copy)]
pub struct UniformCapPolicy {
    /// Per-socket cap in watts.
    pub cap_w: f64,
    /// Threads per socket (Static uses the core count).
    pub threads: u32,
}

impl Policy for UniformCapPolicy {
    fn choose(&mut self, _task: EdgeId, _rank: u32, _now: f64) -> Decision {
        Decision::Cap { cap_w: self.cap_w, threads: self.threads }
    }
}
