//! CoMD-like trace generator.
//!
//! CoMD is a molecular-dynamics proxy app. The paper (§5.2) highlights that
//! *all* of its MPI communication is collectives, so the only scheduling
//! lever is reallocating power between ranks at every collective to soak up
//! load imbalance — which is mild and mostly static (atoms migrate slowly).
//! Its tasks are moderately memory-intensive force computations followed by
//! cheap position/velocity updates and an atom-redistribution step.

use crate::builder::AppBuilder;
use crate::AppParams;
use pcap_dag::TaskGraph;
use pcap_machine::TaskModel;

/// Serial reference seconds of the per-iteration force computation.
const FORCE_SERIAL_S: f64 = 6.0;
/// Serial seconds of the position/velocity update.
const UPDATE_SERIAL_S: f64 = 1.2;
/// Serial seconds of the atom redistribution step.
const REDIST_SERIAL_S: f64 = 0.9;
/// Static per-rank imbalance amplitude (spatial decomposition unevenness).
const STATIC_IMBALANCE: f64 = 0.045;
/// Per-iteration jitter (atom migration).
const ITER_JITTER: f64 = 0.012;

fn force_model(scale: f64) -> TaskModel {
    TaskModel { activity: 0.88, ..TaskModel::mixed(FORCE_SERIAL_S * scale, 0.25) }
}

fn update_model(scale: f64) -> TaskModel {
    TaskModel::mixed(UPDATE_SERIAL_S * scale, 0.40)
}

fn redist_model(scale: f64) -> TaskModel {
    TaskModel::mixed(REDIST_SERIAL_S * scale, 0.50)
}

/// Generates a CoMD-like DAG: per iteration, `force → allreduce → update →
/// allreduce → redistribute → Pcontrol`, collectives only.
pub fn generate(params: &AppParams) -> TaskGraph {
    let mut b = AppBuilder::new(params.ranks, params.seed);
    let n = params.ranks as usize;
    let static_imb: Vec<f64> = (0..n).map(|_| b.jitter(STATIC_IMBALANCE)).collect();

    for _ in 0..params.iterations {
        let force: Vec<TaskModel> =
            (0..n).map(|r| force_model(static_imb[r] * b.jitter(ITER_JITTER))).collect();
        b.compute_then_collective(&force);
        let update: Vec<TaskModel> =
            (0..n).map(|r| update_model(static_imb[r] * b.jitter(ITER_JITTER))).collect();
        b.compute_then_collective(&update);
        let redist: Vec<TaskModel> =
            (0..n).map(|r| redist_model(static_imb[r] * b.jitter(ITER_JITTER))).collect();
        b.compute_then_pcontrol(&redist);
    }
    let fin: Vec<TaskModel> = (0..n).map(|_| TaskModel::compute_bound(0.01)).collect();
    b.finalize(&fin).expect("CoMD generator produces a valid DAG")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcap_dag::VertexKind;

    #[test]
    fn structure_matches_spec() {
        let p = AppParams { ranks: 8, iterations: 5, seed: 7 };
        let g = generate(&p);
        // Per iteration: 3 sync vertices; plus Init and Finalize.
        assert_eq!(g.num_vertices(), 2 + 3 * 5);
        // Tasks: 3 per rank per iteration + finals. No messages at all.
        assert_eq!(g.num_tasks(), 8 * 3 * 5 + 8);
        assert_eq!(g.num_edges(), g.num_tasks(), "CoMD is collectives-only");
        // All non-init/finalize vertices are global syncs.
        assert!(g
            .vertices()
            .iter()
            .all(|v| v.kind.is_global_sync() || v.kind == VertexKind::Pcontrol));
    }

    #[test]
    fn imbalance_is_mild() {
        let p = AppParams { ranks: 16, iterations: 1, seed: 3 };
        let g = generate(&p);
        // Compare the per-rank serial work of the force tasks.
        let mut works: Vec<f64> = g
            .edges()
            .iter()
            .filter_map(|e| e.task_model())
            .filter(|m| m.serial_seconds() > 3.0)
            .map(|m| m.serial_seconds())
            .collect();
        works.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(works.len(), 16);
        let spread = works.last().unwrap() / works.first().unwrap();
        assert!(spread < 1.2, "CoMD imbalance should be mild, got {spread}");
        assert!(spread > 1.0, "but not exactly zero");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let p = AppParams { ranks: 4, iterations: 2, seed: 99 };
        let a = generate(&p);
        let b = generate(&p);
        let wa: Vec<f64> =
            a.edges().iter().filter_map(|e| e.task_model()).map(|m| m.serial_seconds()).collect();
        let wb: Vec<f64> =
            b.edges().iter().filter_map(|e| e.task_model()).map(|m| m.serial_seconds()).collect();
        assert_eq!(wa, wb);
    }
}
