//! LULESH-2.0-like trace generator.
//!
//! LULESH is a shock-hydrodynamics proxy app. Unlike CoMD it "relies on a
//! multitude of point-to-point messages between collective calls" (paper
//! §5.2): each timestep performs stress/hourglass force halo exchanges with
//! spatial neighbours and ends with the global `dt` allreduce. Its tasks are
//! memory-intensive with pronounced cache contention — the reason the LP and
//! Conductor pick ~5 threads per socket at 50 W while Static's 8 throttled
//! threads lose ~26% (paper Table 3).

use crate::builder::{ring_neighbours, AppBuilder};
use crate::AppParams;
use pcap_dag::TaskGraph;
use pcap_machine::TaskModel;

/// Serial seconds of the main stress-integration task per phase.
const STRESS_SERIAL_S: f64 = 7.5;
/// Serial seconds of the hourglass-force task.
const HOURGLASS_SERIAL_S: f64 = 5.0;
/// Serial seconds of the final positions/dt task before the allreduce.
const DT_SERIAL_S: f64 = 1.0;
/// Static per-rank imbalance (mesh regions differ in element count).
const STATIC_IMBALANCE: f64 = 0.09;
/// Per-iteration jitter.
const ITER_JITTER: f64 = 0.015;
/// Halo message size (bytes): plane of a ~90³ local mesh, 8-byte doubles.
const HALO_BYTES: u64 = 90 * 90 * 8 * 3;

/// The cache-contention signature that produces the 5-thread sweet spot.
fn contended(total_serial: f64, mem_fraction: f64) -> TaskModel {
    TaskModel {
        bw_sat_threads: 4.0,
        cache_sweet_threads: 5.0,
        cache_penalty: 0.20,
        ..TaskModel::mixed(total_serial, mem_fraction)
    }
}

fn stress_model(scale: f64) -> TaskModel {
    contended(STRESS_SERIAL_S * scale, 0.50)
}

fn hourglass_model(scale: f64) -> TaskModel {
    contended(HOURGLASS_SERIAL_S * scale, 0.55)
}

fn dt_model(scale: f64) -> TaskModel {
    TaskModel::mixed(DT_SERIAL_S * scale, 0.30)
}

/// The short Isend→Wait overlap window in each halo exchange.
fn overlap_stub() -> TaskModel {
    TaskModel::mixed(0.008, 0.2)
}

/// Generates a LULESH-like DAG: per iteration two p2p halo-exchange phases
/// (stress, hourglass) followed by the `dt` collective and a `Pcontrol`.
pub fn generate(params: &AppParams) -> TaskGraph {
    let mut b = AppBuilder::new(params.ranks, params.seed);
    let n = params.ranks as usize;
    let static_imb: Vec<f64> = (0..n).map(|_| b.jitter(STATIC_IMBALANCE)).collect();
    let neigh = ring_neighbours(params.ranks);

    for _ in 0..params.iterations {
        let stress: Vec<TaskModel> =
            (0..n).map(|r| stress_model(static_imb[r] * b.jitter(ITER_JITTER))).collect();
        b.halo_exchange(&stress, &neigh, HALO_BYTES, overlap_stub());

        let hour: Vec<TaskModel> =
            (0..n).map(|r| hourglass_model(static_imb[r] * b.jitter(ITER_JITTER))).collect();
        b.halo_exchange(&hour, &neigh, HALO_BYTES, overlap_stub());

        let dt: Vec<TaskModel> =
            (0..n).map(|r| dt_model(static_imb[r] * b.jitter(ITER_JITTER))).collect();
        b.compute_then_collective(&dt);

        let marker: Vec<TaskModel> = (0..n).map(|_| TaskModel::mixed(0.004, 0.2)).collect();
        b.compute_then_pcontrol(&marker);
    }
    let fin: Vec<TaskModel> = (0..n).map(|_| TaskModel::compute_bound(0.01)).collect();
    b.finalize(&fin).expect("LULESH generator produces a valid DAG")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcap_machine::{convex_frontier, MachineSpec};

    #[test]
    fn has_point_to_point_messages() {
        let p = AppParams { ranks: 8, iterations: 3, seed: 11 };
        let g = generate(&p);
        let messages = g.num_edges() - g.num_tasks();
        // 2 halo exchanges × 8 ranks × 2 neighbours × 3 iterations.
        assert_eq!(messages, 2 * 8 * 2 * 3);
    }

    #[test]
    fn five_threads_beat_eight_at_mid_power() {
        // The Table 3 signature: on the main stress task's frontier, the
        // points around 50 W use fewer than 8 threads.
        let m = MachineSpec::e5_2670();
        let task = stress_model(1.0);
        let frontier = convex_frontier(&task.config_space(&m));
        let mix = frontier.mix_for_power(50.0);
        assert!(mix.is_some());
        let (i, j, _) = mix.unwrap();
        let ti = frontier.points()[i].config.threads;
        let tj = frontier.points()[j].config.threads;
        assert!(ti < 8 || tj < 8, "expected <8 threads near 50 W, got {ti} and {tj} threads");
    }

    #[test]
    fn structure_counts() {
        let p = AppParams { ranks: 4, iterations: 2, seed: 5 };
        let g = generate(&p);
        // Vertices: Init + per iter (2 × (Send+Wait per rank) + collective +
        // pcontrol) + Finalize.
        let expected_v = 2 + 2 * (2 * (4 + 4) + 2);
        assert_eq!(g.num_vertices(), expected_v);
        // Tasks per iter: 2 × (compute + overlap) per rank + dt + marker.
        let expected_tasks = 2 * (2 * (4 + 4) + 4 + 4) + 4;
        assert_eq!(g.num_tasks(), expected_tasks);
    }
}
