//! The two-rank asynchronous message exchange of paper Figures 2 and 8.
//!
//! This is the micro-benchmark on which the paper compares the fixed-vertex
//! order LP against the exact flow ILP (Figure 8): small enough (fewer than
//! 30 DAG edges) for the ILP to be tractable, yet exhibiting real cross-rank
//! coupling — rank 0's `MPI_Wait` cannot complete before rank 1 has posted
//! its receive, so slowing either rank shifts co-scheduled task sets.

use pcap_dag::{GraphBuilder, TaskGraph, VertexKind};
use pcap_machine::TaskModel;

/// Workload knobs for the exchange micro-benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExchangeParams {
    /// Serial seconds of rank 0's pre-send computation (A1).
    pub a1_serial_s: f64,
    /// Serial seconds of rank 0's overlap computation (A2, Isend→Wait).
    pub a2_serial_s: f64,
    /// Serial seconds of rank 0's post-wait computation (A3).
    pub a3_serial_s: f64,
    /// Serial seconds of rank 1's pre-receive computation (A4).
    pub a4_serial_s: f64,
    /// Serial seconds of rank 1's post-receive computation (A6).
    pub a6_serial_s: f64,
    /// Message size in bytes (A5).
    pub message_bytes: u64,
}

impl Default for ExchangeParams {
    fn default() -> Self {
        Self {
            a1_serial_s: 4.0,
            a2_serial_s: 2.0,
            a3_serial_s: 3.0,
            a4_serial_s: 6.0,
            a6_serial_s: 2.5,
            message_bytes: 4 << 20,
        }
    }
}

/// Builds the Figure-2 DAG. Task naming follows the paper:
/// rank 0: `Init →A1→ Isend →A2→ Wait →A3→ Finalize`;
/// rank 1: `Init →A4→ Recv →A6→ Finalize`;
/// message A5 from `Isend` to `Recv` plus a zero-byte completion
/// notification from `Recv` to `Wait` (rendezvous semantics).
pub fn generate(p: &ExchangeParams) -> TaskGraph {
    let mut b = GraphBuilder::new(2);
    let init = b.vertex(VertexKind::Init, None);
    let isend = b.vertex(VertexKind::Send, Some(0));
    let wait = b.vertex(VertexKind::Wait, Some(0));
    let recv = b.vertex(VertexKind::Recv, Some(1));
    let fin = b.vertex(VertexKind::Finalize, None);

    let mixed = |s: f64, frac: f64| TaskModel::mixed(s, frac);
    b.task(init, isend, 0, mixed(p.a1_serial_s, 0.30)); // A1
    b.task(isend, wait, 0, mixed(p.a2_serial_s, 0.45)); // A2
    b.task(wait, fin, 0, mixed(p.a3_serial_s, 0.25)); // A3
    b.task(init, recv, 1, mixed(p.a4_serial_s, 0.35)); // A4
    b.message(isend, recv, 0, 1, p.message_bytes); // A5
    b.task(recv, fin, 1, mixed(p.a6_serial_s, 0.40)); // A6
    b.message(recv, wait, 1, 0, 0); // rendezvous completion

    b.build().expect("exchange generator produces a valid DAG")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_small_enough_for_the_flow_ilp() {
        let g = generate(&ExchangeParams::default());
        assert!(g.num_edges() < 30, "paper's ILP tractability bound");
        assert_eq!(g.num_tasks(), 5);
        assert_eq!(g.num_vertices(), 5);
    }

    #[test]
    fn wait_depends_on_recv() {
        let g = generate(&ExchangeParams::default());
        // There must be a message edge ending at the Wait vertex — the
        // cross-rank coupling that makes co-scheduling nontrivial.
        let has_ack =
            g.iter_edges().any(|(_, e)| !e.is_task() && g.vertex(e.dst).kind == VertexKind::Wait);
        assert!(has_ack);
    }
}
