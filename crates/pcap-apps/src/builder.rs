//! High-level application construction on top of [`pcap_dag::GraphBuilder`].
//!
//! Benchmark generators describe execution as a *per-rank frontier*: each
//! rank has a "current" vertex, and primitives append computation, global
//! collectives, `MPI_Pcontrol` markers and halo exchanges after it, exactly
//! like an MPI trace unfolds in program order.

use pcap_dag::{EdgeId, GraphBuilder, GraphError, TaskGraph, VertexId, VertexKind};
use pcap_machine::TaskModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Frontier-style application builder.
pub struct AppBuilder {
    gb: GraphBuilder,
    /// Current (latest) vertex per rank.
    frontier: Vec<VertexId>,
    ranks: u32,
    rng: StdRng,
}

impl AppBuilder {
    /// Starts an application: creates the `Init` vertex shared by all ranks.
    pub fn new(ranks: u32, seed: u64) -> Self {
        assert!(ranks > 0);
        let mut gb = GraphBuilder::new(ranks);
        let init = gb.vertex(VertexKind::Init, None);
        Self { gb, frontier: vec![init; ranks as usize], ranks, rng: StdRng::seed_from_u64(seed) }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> u32 {
        self.ranks
    }

    /// A uniform sample in `[1 − amp, 1 + amp]` — the building block for
    /// load-imbalance multipliers.
    pub fn jitter(&mut self, amp: f64) -> f64 {
        if amp == 0.0 {
            1.0
        } else {
            1.0 + self.rng.gen_range(-amp..=amp)
        }
    }

    /// An approximately normal sample (sum of uniforms) with the given std
    /// deviation around 1.0, clamped positive.
    pub fn noise(&mut self, std_dev: f64) -> f64 {
        let mut acc = 0.0;
        for _ in 0..12 {
            acc += self.rng.gen_range(0.0..1.0);
        }
        (1.0 + (acc - 6.0) * std_dev).max(0.05)
    }

    /// Every rank runs one computation task (its entry in `models`) and then
    /// joins a global collective. Returns the per-rank task ids.
    pub fn compute_then_collective(&mut self, models: &[TaskModel]) -> Vec<EdgeId> {
        self.compute_then_sync(models, VertexKind::Collective)
    }

    /// Every rank runs one computation task and then hits an `MPI_Pcontrol`
    /// iteration marker (a global sync in the paper's instrumented runs).
    pub fn compute_then_pcontrol(&mut self, models: &[TaskModel]) -> Vec<EdgeId> {
        self.compute_then_sync(models, VertexKind::Pcontrol)
    }

    fn compute_then_sync(&mut self, models: &[TaskModel], kind: VertexKind) -> Vec<EdgeId> {
        assert_eq!(models.len(), self.ranks as usize, "one task model per rank");
        let sync = self.gb.vertex(kind, None);
        let mut tasks = Vec::with_capacity(models.len());
        for r in 0..self.ranks {
            let e = self.gb.task(self.frontier[r as usize], sync, r, models[r as usize].clone());
            tasks.push(e);
            self.frontier[r as usize] = sync;
        }
        tasks
    }

    /// One rank computes on its own: appends a task ending at a new
    /// rank-local vertex of the given kind.
    pub fn compute(&mut self, rank: u32, model: TaskModel, kind: VertexKind) -> (EdgeId, VertexId) {
        let v = self.gb.vertex(kind, Some(rank));
        let e = self.gb.task(self.frontier[rank as usize], v, rank, model);
        self.frontier[rank as usize] = v;
        (e, v)
    }

    /// A neighbourhood halo exchange: every rank computes (`models[r]`),
    /// posts sends to its neighbours, then waits for all of its neighbours'
    /// messages. `neighbours(r)` yields the ranks `r` exchanges with;
    /// `bytes` is the per-message size; `overlap` models the short window
    /// between posting the sends and blocking in the wait.
    ///
    /// Returns the per-rank *compute* task ids (the overlap stubs are
    /// bookkeeping, not schedulable work of interest).
    pub fn halo_exchange(
        &mut self,
        models: &[TaskModel],
        neighbours: impl Fn(u32) -> Vec<u32>,
        bytes: u64,
        overlap: TaskModel,
    ) -> Vec<EdgeId> {
        assert_eq!(models.len(), self.ranks as usize);
        let mut tasks = Vec::with_capacity(models.len());
        let mut sends = Vec::with_capacity(self.ranks as usize);
        let mut waits = Vec::with_capacity(self.ranks as usize);
        // Phase 1: compute, then a Send vertex per rank.
        for r in 0..self.ranks {
            let (e, s) = self.compute(r, models[r as usize].clone(), VertexKind::Send);
            tasks.push(e);
            sends.push(s);
        }
        // Phase 2: a Wait vertex per rank, fed by the overlap stub and by
        // every neighbour's message.
        for r in 0..self.ranks {
            let w = self.gb.vertex(VertexKind::Wait, Some(r));
            self.gb.task(sends[r as usize], w, r, overlap.clone());
            waits.push(w);
        }
        for r in 0..self.ranks {
            for n in neighbours(r) {
                assert!(n < self.ranks && n != r, "bad neighbour {n} of {r}");
                self.gb.message(sends[n as usize], waits[r as usize], n, r, bytes);
            }
        }
        for r in 0..self.ranks {
            self.frontier[r as usize] = waits[r as usize];
        }
        tasks
    }

    /// Finishes the application: every rank runs a (usually tiny) final task
    /// into the shared `Finalize` vertex, then validates and freezes.
    pub fn finalize(mut self, final_models: &[TaskModel]) -> Result<TaskGraph, GraphError> {
        assert_eq!(final_models.len(), self.ranks as usize);
        let fin = self.gb.vertex(VertexKind::Finalize, None);
        for r in 0..self.ranks {
            self.gb.task(self.frontier[r as usize], fin, r, final_models[r as usize].clone());
        }
        self.gb.build()
    }
}

/// A 1-D ring neighbourhood (left and right neighbours, periodic).
pub fn ring_neighbours(ranks: u32) -> impl Fn(u32) -> Vec<u32> {
    move |r| {
        if ranks <= 1 {
            vec![]
        } else if ranks == 2 {
            vec![1 - r]
        } else {
            vec![(r + ranks - 1) % ranks, (r + 1) % ranks]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(ranks: u32) -> Vec<TaskModel> {
        (0..ranks).map(|_| TaskModel::compute_bound(0.001)).collect()
    }

    #[test]
    fn collective_app_builds() {
        let mut b = AppBuilder::new(4, 1);
        for _ in 0..3 {
            let models: Vec<TaskModel> =
                (0..4).map(|r| TaskModel::compute_bound(1.0 + r as f64)).collect();
            b.compute_then_collective(&models);
            b.compute_then_pcontrol(&tiny(4));
        }
        let g = b.finalize(&tiny(4)).unwrap();
        // 3 iterations × (4 + 4) tasks + 4 final tasks.
        assert_eq!(g.num_tasks(), 28);
        // Init + 6 syncs + Finalize.
        assert_eq!(g.num_vertices(), 8);
    }

    #[test]
    fn halo_exchange_builds_and_connects() {
        let mut b = AppBuilder::new(4, 1);
        let models = tiny(4);
        b.halo_exchange(&models, ring_neighbours(4), 4096, TaskModel::compute_bound(0.0001));
        let g = b.finalize(&tiny(4)).unwrap();
        // Tasks: 4 compute + 4 overlap + 4 final = 12; messages: 4 ranks × 2.
        assert_eq!(g.num_tasks(), 12);
        assert_eq!(g.num_edges() - g.num_tasks(), 8);
    }

    #[test]
    fn ring_neighbours_shape() {
        let n = ring_neighbours(4);
        assert_eq!(n(0), vec![3, 1]);
        assert_eq!(n(3), vec![2, 0]);
        let n2 = ring_neighbours(2);
        assert_eq!(n2(0), vec![1]);
        assert_eq!(n2(1), vec![0]);
    }

    #[test]
    fn jitter_and_noise_are_bounded_and_deterministic() {
        let mut a = AppBuilder::new(2, 42);
        let mut b = AppBuilder::new(2, 42);
        for _ in 0..100 {
            let ja = a.jitter(0.1);
            let jb = b.jitter(0.1);
            assert_eq!(ja, jb);
            assert!((0.9..=1.1).contains(&ja));
            let na = a.noise(0.05);
            assert!(na > 0.0);
            assert_eq!(na, b.noise(0.05));
        }
    }
}
