//! NAS Multi-Zone (SP-MZ, BT-MZ)-like trace generators.
//!
//! The NAS-MZ suite partitions the mesh into zones distributed over MPI
//! ranks, with OpenMP inside each rank and point-to-point zone-boundary
//! exchanges (`exchange_qbc`) every step. The two classes used in the paper
//! differ in exactly the property that matters for power scheduling:
//!
//! * **SP-MZ** uses equally-sized zones — the benchmark is well balanced, so
//!   uniform power is already near-optimal and an adaptive runtime can only
//!   lose (the paper measures Conductor *up to 2.6% slower* than Static).
//! * **BT-MZ** uses zones whose sizes span roughly a 4–5× range — heavy
//!   static imbalance, so nonuniform power allocation buys enormous speedups
//!   at tight caps (the paper's 74.9%-over-Static headline at 30 W).

use crate::builder::{ring_neighbours, AppBuilder};
use crate::AppParams;
use pcap_dag::TaskGraph;
use pcap_machine::TaskModel;

/// Serial seconds of one x/y/z sweep on a *unit-weight* zone.
const SWEEP_SERIAL_S: f64 = 3.2;
/// Serial seconds of the RHS computation on a unit-weight zone.
const RHS_SERIAL_S: f64 = 2.2;
/// Zone-boundary message size.
const QBC_BYTES: u64 = 64 * 64 * 8 * 5;
/// BT-MZ largest/smallest zone weight ratio.
const BT_ZONE_RATIO: f64 = 3.6;
/// SP-MZ residual imbalance (zones are same-sized; only cache effects).
const SP_IMBALANCE: f64 = 0.012;
/// Per-iteration jitter for both.
const ITER_JITTER: f64 = 0.01;

fn sweep_model(scale: f64) -> TaskModel {
    TaskModel::mixed(SWEEP_SERIAL_S * scale, 0.22)
}

fn rhs_model(scale: f64) -> TaskModel {
    TaskModel::mixed(RHS_SERIAL_S * scale, 0.26)
}

fn overlap_stub() -> TaskModel {
    TaskModel::mixed(0.006, 0.2)
}

/// Per-rank zone weights for BT-MZ: geometric progression so that
/// `max/min = BT_ZONE_RATIO`, normalized to mean 1.
fn bt_zone_weights(ranks: u32) -> Vec<f64> {
    let n = ranks as usize;
    if n == 1 {
        return vec![1.0];
    }
    let weights: Vec<f64> = (0..n).map(|r| BT_ZONE_RATIO.powf(r as f64 / (n - 1) as f64)).collect();
    let mean = weights.iter().sum::<f64>() / n as f64;
    weights.into_iter().map(|w| w / mean).collect()
}

fn generate_mz(params: &AppParams, zone_weights: Vec<f64>) -> TaskGraph {
    let mut b = AppBuilder::new(params.ranks, params.seed);
    let n = params.ranks as usize;
    let neigh = ring_neighbours(params.ranks);

    for _ in 0..params.iterations {
        // RHS computation then boundary exchange.
        let rhs: Vec<TaskModel> =
            (0..n).map(|r| rhs_model(zone_weights[r] * b.jitter(ITER_JITTER))).collect();
        b.halo_exchange(&rhs, &neigh, QBC_BYTES, overlap_stub());
        // The directional sweep then another boundary exchange.
        let sweep: Vec<TaskModel> =
            (0..n).map(|r| sweep_model(zone_weights[r] * b.jitter(ITER_JITTER))).collect();
        b.halo_exchange(&sweep, &neigh, QBC_BYTES, overlap_stub());
        // Iteration marker (a global sync inserted by the paper's
        // instrumentation at timestep boundaries).
        let marker: Vec<TaskModel> = (0..n).map(|_| TaskModel::mixed(0.004, 0.2)).collect();
        b.compute_then_pcontrol(&marker);
    }
    let fin: Vec<TaskModel> = (0..n).map(|_| TaskModel::compute_bound(0.01)).collect();
    b.finalize(&fin).expect("NAS-MZ generator produces a valid DAG")
}

/// SP-MZ: equal zones, well balanced.
pub fn generate_sp(params: &AppParams) -> TaskGraph {
    // Residual imbalance only (allocation effects, cache state).
    let mut seed_rng = AppBuilder::new(params.ranks, params.seed ^ 0x5f);
    let weights: Vec<f64> = (0..params.ranks).map(|_| seed_rng.jitter(SP_IMBALANCE)).collect();
    generate_mz(params, weights)
}

/// BT-MZ: zone sizes spanning a ~4.5× range.
pub fn generate_bt(params: &AppParams) -> TaskGraph {
    generate_mz(params, bt_zone_weights(params.ranks))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bt_zone_weights_span_ratio_and_mean_one() {
        let w = bt_zone_weights(32);
        let max = w.iter().cloned().fold(f64::MIN, f64::max);
        let min = w.iter().cloned().fold(f64::MAX, f64::min);
        assert!((max / min - BT_ZONE_RATIO).abs() < 1e-9);
        let mean = w.iter().sum::<f64>() / w.len() as f64;
        assert!((mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bt_is_imbalanced_sp_is_not() {
        let p = AppParams { ranks: 16, iterations: 1, seed: 2 };
        let spread = |g: &TaskGraph| {
            // Total serial work per rank: the imbalance the schedulers see.
            let mut per_rank = [0.0_f64; 16];
            for e in g.edges() {
                if let (Some(r), Some(m)) = (e.task_rank(), e.task_model()) {
                    per_rank[r as usize] += m.serial_seconds();
                }
            }
            let max = per_rank.iter().cloned().fold(f64::MIN, f64::max);
            let min = per_rank.iter().cloned().fold(f64::MAX, f64::min);
            max / min
        };
        let bt = generate_bt(&p);
        let sp = generate_sp(&p);
        assert!(spread(&bt) > 3.0, "BT spread {}", spread(&bt));
        assert!(spread(&sp) < 1.25, "SP spread {}", spread(&sp));
    }

    #[test]
    fn structure_counts() {
        let p = AppParams { ranks: 4, iterations: 3, seed: 9 };
        let g = generate_sp(&p);
        // Tasks/iter: 2 exchanges × (compute + overlap) × ranks + marker.
        let per_iter = 2 * (4 + 4) + 4;
        assert_eq!(g.num_tasks(), 3 * per_iter + 4);
        let messages = g.num_edges() - g.num_tasks();
        assert_eq!(messages, 3 * 2 * 4 * 2);
    }

    #[test]
    fn single_rank_degenerates_gracefully() {
        let p = AppParams { ranks: 1, iterations: 2, seed: 1 };
        let g = generate_bt(&p);
        assert_eq!(g.num_edges() - g.num_tasks(), 0, "no self-messages");
    }
}
