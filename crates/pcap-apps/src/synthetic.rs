//! Fully parameterized synthetic workload generator.
//!
//! The four named benchmarks pin their signatures to the paper; this
//! generator exposes every knob — load-imbalance distribution, memory
//! intensity, cache contention, communication pattern, task granularity —
//! so studies can explore the space *between* the benchmarks (e.g. "at what
//! imbalance does Conductor stop paying off?"). Used heavily by the
//! property-based tests and the ablation binaries.

use crate::builder::{ring_neighbours, AppBuilder};
use pcap_dag::TaskGraph;
use pcap_machine::TaskModel;

/// How per-rank work is distributed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Imbalance {
    /// All ranks identical.
    None,
    /// Uniform jitter of the given amplitude around 1 (CoMD/SP-like).
    Jitter(f64),
    /// Geometric progression with the given max/min ratio (BT-MZ-like).
    Geometric(f64),
    /// A single straggler rank carrying `factor` times the mean work.
    Straggler(f64),
}

/// Communication structure per iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommPattern {
    /// One global collective per iteration (CoMD-like).
    Collectives,
    /// A ring halo exchange per iteration (NAS-MZ-like).
    RingHalo,
    /// Halo exchange then a collective (LULESH-like).
    HaloThenCollective,
}

/// Synthetic workload description.
#[derive(Debug, Clone)]
pub struct SyntheticSpec {
    pub ranks: u32,
    pub iterations: u32,
    pub seed: u64,
    /// Serial reference seconds of the main task per iteration.
    pub task_serial_s: f64,
    /// Memory-bound fraction of the serial work.
    pub mem_fraction: f64,
    /// Cache-contention penalty per thread beyond the sweet spot
    /// (0 disables contention, LULESH uses ~0.2).
    pub cache_penalty: f64,
    /// Thread count at which contention starts.
    pub cache_sweet_threads: f64,
    pub imbalance: Imbalance,
    pub comm: CommPattern,
    /// Per-iteration multiplicative jitter amplitude.
    pub iteration_jitter: f64,
    /// Message size for halo patterns.
    pub message_bytes: u64,
}

impl Default for SyntheticSpec {
    fn default() -> Self {
        Self {
            ranks: 8,
            iterations: 5,
            seed: 1,
            task_serial_s: 4.0,
            mem_fraction: 0.3,
            cache_penalty: 0.0,
            cache_sweet_threads: 8.0,
            imbalance: Imbalance::Jitter(0.05),
            comm: CommPattern::Collectives,
            iteration_jitter: 0.01,
            message_bytes: 64 << 10,
        }
    }
}

impl SyntheticSpec {
    /// Per-rank static work weights, mean 1.
    pub fn weights(&self) -> Vec<f64> {
        let n = self.ranks as usize;
        let raw: Vec<f64> = match self.imbalance {
            Imbalance::None => vec![1.0; n],
            Imbalance::Jitter(amp) => {
                let mut b = AppBuilder::new(self.ranks, self.seed ^ 0x77);
                (0..n).map(|_| b.jitter(amp)).collect()
            }
            Imbalance::Geometric(ratio) => {
                if n == 1 {
                    vec![1.0]
                } else {
                    (0..n).map(|r| ratio.powf(r as f64 / (n - 1) as f64)).collect()
                }
            }
            Imbalance::Straggler(factor) => {
                let mut w = vec![1.0; n];
                w[n - 1] = factor.max(1.0);
                w
            }
        };
        let mean = raw.iter().sum::<f64>() / n as f64;
        raw.into_iter().map(|w| w / mean).collect()
    }

    fn task(&self, scale: f64) -> TaskModel {
        TaskModel {
            cache_penalty: self.cache_penalty,
            cache_sweet_threads: self.cache_sweet_threads,
            ..TaskModel::mixed(self.task_serial_s * scale, self.mem_fraction)
        }
    }

    /// Generates the task graph.
    pub fn generate(&self) -> TaskGraph {
        let mut b = AppBuilder::new(self.ranks, self.seed);
        let n = self.ranks as usize;
        let weights = self.weights();
        let neigh = ring_neighbours(self.ranks);
        let stub = TaskModel::mixed(0.005, 0.2);

        for _ in 0..self.iterations {
            let models: Vec<TaskModel> =
                (0..n).map(|r| self.task(weights[r] * b.jitter(self.iteration_jitter))).collect();
            match self.comm {
                CommPattern::Collectives => {
                    b.compute_then_collective(&models);
                }
                CommPattern::RingHalo => {
                    b.halo_exchange(&models, &neigh, self.message_bytes, stub.clone());
                }
                CommPattern::HaloThenCollective => {
                    b.halo_exchange(&models, &neigh, self.message_bytes, stub.clone());
                    let small: Vec<TaskModel> =
                        (0..n).map(|_| TaskModel::mixed(0.02, 0.3)).collect();
                    b.compute_then_collective(&small);
                }
            }
            let marker: Vec<TaskModel> = (0..n).map(|_| TaskModel::mixed(0.002, 0.2)).collect();
            b.compute_then_pcontrol(&marker);
        }
        let fin: Vec<TaskModel> = (0..n).map(|_| TaskModel::compute_bound(0.01)).collect();
        b.finalize(&fin).expect("synthetic generator produces a valid DAG")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_builds() {
        let g = SyntheticSpec::default().generate();
        assert!(g.num_tasks() > 0);
        assert_eq!(g.num_ranks(), 8);
    }

    #[test]
    fn weights_have_mean_one_for_all_distributions() {
        for imb in [
            Imbalance::None,
            Imbalance::Jitter(0.2),
            Imbalance::Geometric(5.0),
            Imbalance::Straggler(3.0),
        ] {
            let spec = SyntheticSpec { imbalance: imb, ..Default::default() };
            let w = spec.weights();
            let mean = w.iter().sum::<f64>() / w.len() as f64;
            assert!((mean - 1.0).abs() < 1e-12, "{imb:?}");
        }
    }

    #[test]
    fn geometric_ratio_is_honoured() {
        let spec =
            SyntheticSpec { imbalance: Imbalance::Geometric(4.0), ranks: 16, ..Default::default() };
        let w = spec.weights();
        let max = w.iter().cloned().fold(f64::MIN, f64::max);
        let min = w.iter().cloned().fold(f64::MAX, f64::min);
        assert!((max / min - 4.0).abs() < 1e-9);
    }

    #[test]
    fn straggler_puts_extra_on_last_rank() {
        let spec =
            SyntheticSpec { imbalance: Imbalance::Straggler(3.0), ranks: 4, ..Default::default() };
        let w = spec.weights();
        assert!(w[3] > w[0] * 2.5);
    }

    #[test]
    fn comm_patterns_shape_the_graph() {
        let mk = |comm| SyntheticSpec { comm, iterations: 2, ..Default::default() }.generate();
        let coll = mk(CommPattern::Collectives);
        assert_eq!(coll.num_edges(), coll.num_tasks(), "collectives-only has no messages");
        let halo = mk(CommPattern::RingHalo);
        assert!(halo.num_edges() > halo.num_tasks());
        let both = mk(CommPattern::HaloThenCollective);
        assert!(both.num_vertices() > halo.num_vertices());
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = SyntheticSpec::default();
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.num_edges(), b.num_edges());
        let wa: Vec<f64> =
            a.edges().iter().filter_map(|e| e.task_model()).map(|m| m.serial_seconds()).collect();
        let wb: Vec<f64> =
            b.edges().iter().filter_map(|e| e.task_model()).map(|m| m.serial_seconds()).collect();
        assert_eq!(wa, wb);
    }
}
