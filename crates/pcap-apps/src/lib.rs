//! # pcap-apps — synthetic benchmark traces
//!
//! The paper evaluates on CoMD, LULESH 2.0 and NAS-MZ SP/BT running on a
//! real cluster, traced through the MPI profiling interface. Without that
//! cluster, this crate generates application DAGs whose *structure* and
//! *workload signature* mimic each benchmark — which is all the scheduling
//! formulations and runtimes ever observe:
//!
//! | benchmark | communication structure | signature |
//! |---|---|---|
//! | [`comd`]   | collectives only (paper §5.2)            | mild, mostly-static load imbalance; moderate memory intensity |
//! | [`lulesh`] | p2p halo exchanges between collectives    | cache contention → ~5-thread sweet spot (paper Table 3); clear imbalance |
//! | [`nasmz`] BT-MZ | p2p zone-boundary exchange        | strong static zone imbalance → big LP headroom at low power |
//! | [`nasmz`] SP-MZ | p2p zone-boundary exchange        | well balanced → little LP headroom, Conductor can regress |
//! | [`exchange`] | the two-rank asynchronous message exchange of Figures 2/8 | small enough for the flow ILP |
//!
//! Every generator is deterministic given its seed; all randomness flows
//! through a single seeded PRNG, so experiments are exactly repeatable.

pub mod builder;
pub mod comd;
pub mod exchange;
pub mod lulesh;
pub mod nasmz;
pub mod synthetic;

pub use builder::AppBuilder;
pub use synthetic::{CommPattern, Imbalance, SyntheticSpec};

use pcap_dag::TaskGraph;

/// Common generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppParams {
    /// Number of MPI ranks (= sockets; the paper uses 32).
    pub ranks: u32,
    /// Number of timesteps (iterations between `MPI_Pcontrol` markers).
    pub iterations: u32,
    /// PRNG seed for per-rank imbalance and per-iteration jitter.
    pub seed: u64,
}

impl Default for AppParams {
    fn default() -> Self {
        Self { ranks: 32, iterations: 10, seed: 0x5eed }
    }
}

/// The four benchmarks of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    CoMD,
    Lulesh,
    SpMz,
    BtMz,
}

impl Benchmark {
    /// All four, in the order the paper's figures list them.
    pub const ALL: [Benchmark; 4] =
        [Benchmark::BtMz, Benchmark::CoMD, Benchmark::Lulesh, Benchmark::SpMz];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::CoMD => "CoMD",
            Benchmark::Lulesh => "LULESH",
            Benchmark::SpMz => "SP",
            Benchmark::BtMz => "BT",
        }
    }

    /// Generates the benchmark's application DAG.
    pub fn generate(self, params: &AppParams) -> TaskGraph {
        match self {
            Benchmark::CoMD => comd::generate(params),
            Benchmark::Lulesh => lulesh::generate(params),
            Benchmark::SpMz => nasmz::generate_sp(params),
            Benchmark::BtMz => nasmz::generate_bt(params),
        }
    }
}
